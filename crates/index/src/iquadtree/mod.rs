//! The IQuad-tree (Influence Quad-tree), the paper's user-MBR-free index
//! (§V-C) together with its `Traverse` procedure (Algorithm 3).
//!
//! The index partitions space into a hierarchy of squares whose leaf
//! diagonal is the configured `d̂`. Each node stores how many positions of
//! each user fall inside its square. Two pruning rules read those counts:
//!
//! * **IS rule (Lemma 2)** — a user with at least `⌈η(τ, PF, diag)⌉`
//!   positions inside a node's square is influenced by *every* abstract
//!   facility located in that square.
//! * **NIR rule (Lemma 3)** — a user with *no* position inside the leaf
//!   square inflated by `NIR = mMR(τ, r_max)` cannot be influenced by any
//!   facility in the leaf.
//!
//! Everything a node learns is cached (`Ω_inf`, `Ω_vrf`), so facilities
//! sharing a node are handled batch-wise: the second and later facilities
//! in a node pay one cache lookup instead of a scan.

mod codec;
mod node;

// `morton_code` lives in `mc2ls_geo`: it performs the same `quadrant_of`
// descent `traverse` does, so builder and traversal classify boundary
// positions identically, and it is shared with the blocked verification
// substrate in `mc2ls-influence`.
use mc2ls_geo::{morton_code, Extent, Point, Rect, Square};
use mc2ls_influence::{eta_count, non_influence_radius, MovingUser, ProbabilityFunction};
use node::IqtNode;

use crate::setops;

/// The result of traversing the IQuad-tree for one abstract facility.
#[derive(Debug, Clone, Default)]
pub struct TraverseOutcome {
    /// Users certainly influenced (caught by the IS rule at some level on
    /// the root→leaf path). Sorted.
    pub influenced: Vec<u32>,
    /// Users whose relationship is undecided and must be verified with the
    /// cumulative probability (the paper's `Ω'_v`). Sorted, disjoint from
    /// `influenced`. Every user in neither list is certainly *not*
    /// influenced (NIR rule).
    pub to_verify: Vec<u32>,
}

/// Build/shape statistics of an IQuad-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqtStats {
    /// Total number of nodes materialised (sparse: empty squares are not).
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Tree depth (root = level 0; leaves at this level).
    pub depth: usize,
    /// Total positions stored at leaves.
    pub positions: usize,
    /// Number of distinct users indexed.
    pub users: usize,
}

/// The IQuad-tree index over a set of moving users.
///
/// # Examples
/// ```
/// use mc2ls_geo::Point;
/// use mc2ls_influence::{MovingUser, Sigmoid};
/// use mc2ls_index::IQuadTree;
///
/// let users = vec![
///     MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.1, 0.1)]),
///     MovingUser::new(vec![Point::new(40.0, 40.0), Point::new(40.1, 40.0)]),
/// ];
/// let mut tree = IQuadTree::build(&users, &Sigmoid::paper_default(), 0.5, 2.0);
/// let outcome = tree.traverse(&Point::new(0.05, 0.05));
/// // The far-away user is pruned by the NIR rule; only the nearby one
/// // can possibly be influenced.
/// assert!(!outcome.to_verify.contains(&1) && !outcome.influenced.contains(&1));
/// ```
#[derive(Debug)]
pub struct IQuadTree {
    nodes: Vec<IqtNode>,
    root_square: Square,
    depth: usize,
    /// `⌈η⌉` per level (the paper's attached Hash structure keyed by the
    /// diagonal of each level); `None` when the IS rule cannot fire there.
    eta_by_level: Vec<Option<usize>>,
    nir: Option<f64>,
    r_max: usize,
    n_users: usize,
    /// Epoch-stamped per-user dedup marks for
    /// [`IQuadTree::users_with_position_in`] (avoids sorting
    /// duplicate-laden raw id lists on every NIR query). A `Mutex` (rather
    /// than a `RefCell`) keeps the tree `Sync`; the shared-traversal path
    /// never touches it — each worker carries its own [`TraverseScratch`].
    seen: std::sync::Mutex<Stamp>,
    /// Extent of the positions deleted by the in-flight
    /// [`IQuadTree::remove_user`] call (scratch state for its
    /// cache-invalidation pass).
    last_removed_mbr: Option<Rect>,
}

impl Clone for IQuadTree {
    fn clone(&self) -> Self {
        IQuadTree {
            nodes: self.nodes.clone(),
            root_square: self.root_square,
            depth: self.depth,
            eta_by_level: self.eta_by_level.clone(),
            nir: self.nir,
            r_max: self.r_max,
            n_users: self.n_users,
            seen: std::sync::Mutex::new(
                self.seen
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
            last_removed_mbr: self.last_removed_mbr,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Stamp {
    mark: Vec<u32>,
    epoch: u32,
}

/// Per-worker state for [`IQuadTree::traverse_shared`]: a private dedup
/// stamp plus memos standing in for the node caches that the `&mut self`
/// path ([`IQuadTree::traverse`]) writes in place. Because a node's
/// `Ω_inf`/`Ω_vrf` depend only on the node's square and the (immutable
/// during a shared phase) indexed positions, memoising per worker instead of
/// per tree changes *where* results are cached, never *what* they are — the
/// batch-wise reuse property survives within each worker's chunk.
#[derive(Debug)]
pub struct TraverseScratch {
    stamp: Stamp,
    /// node index → `Ω_inf` (IS rule result) computed by this worker.
    omega_inf: std::collections::BTreeMap<u32, Vec<u32>>,
    /// leaf node index → `Ω_vrf` (NIR window users) computed by this worker.
    omega_vrf: std::collections::BTreeMap<u32, Vec<u32>>,
}

impl IQuadTree {
    /// Builds the index over `users` for threshold `tau` and probability
    /// function `pf`, with leaf squares of diagonal `leaf_diagonal` km (the
    /// paper's `d̂`, default 2 km in the experiments).
    ///
    /// # Panics
    /// Panics when `leaf_diagonal ≤ 0` or `tau ∉ (0, 1)`.
    pub fn build<PF: ProbabilityFunction + ?Sized>(
        users: &[MovingUser],
        pf: &PF,
        tau: f64,
        leaf_diagonal: f64,
    ) -> Self {
        assert!(leaf_diagonal > 0.0, "leaf diagonal must be positive");
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1)");

        let r_max = users.iter().map(MovingUser::len).max().unwrap_or(0);
        let nir = if r_max == 0 {
            None
        } else {
            non_influence_radius(pf, tau, r_max)
        };

        // Root square: the padded extent grown to a power-of-two multiple of
        // the leaf side so all leaves share one exact diagonal.
        let mut extent = Extent::new();
        for u in users {
            extent.add_all(u.positions());
        }
        let region = extent
            .padded_rect(1e-6)
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));
        let leaf_side = leaf_diagonal / std::f64::consts::SQRT_2;
        let need = region.width().max(region.height()) / leaf_side;
        let depth = need.log2().ceil().max(0.0) as usize;
        let root_side = leaf_side * (1u64 << depth) as f64;
        let root_square = Square::new(region.min, root_side);

        // η per level: level ℓ squares have diagonal root_diag / 2^ℓ.
        let root_diag = root_square.diagonal();
        let eta_by_level: Vec<Option<usize>> = (0..=depth)
            .map(|l| eta_count(pf, tau, root_diag / (1u64 << l) as f64))
            .collect();

        let mut tree = IQuadTree {
            nodes: Vec::new(),
            root_square,
            depth,
            eta_by_level,
            nir,
            r_max,
            n_users: users.len(),
            seen: std::sync::Mutex::new(Stamp {
                mark: vec![0; users.len()],
                epoch: 0,
            }),
            last_removed_mbr: None,
        };

        assert!(
            depth <= 31,
            "IQuad-tree depth {depth} exceeds the Morton-code budget; \
             use a larger leaf diagonal"
        );

        // Morton-order construction: one code per position (computed by the
        // same quadrant descent `traverse` uses, so builder and traversal
        // agree bit-for-bit on boundary positions), one global sort, then
        // every node is a contiguous range. Sorting by (code, user) makes
        // each leaf range user-sorted, so leaf counts fall out of a
        // run-length scan and internal counts out of child merges — no
        // per-node sorting at all.
        let total: usize = users.iter().map(MovingUser::len).sum();
        let mut items: Vec<(u64, u32, Point)> = Vec::with_capacity(total);
        for (id, u) in users.iter().enumerate() {
            for &p in u.positions() {
                items.push((morton_code(&root_square, depth, &p), id as u32, p));
            }
        }
        // Single u128 key (code ≤ 62 bits ‖ user 32 bits) sorts faster than
        // a lexicographic tuple comparison.
        items.sort_unstable_by_key(|&(code, user, _)| ((code as u128) << 32) | user as u128);
        tree.build_range(root_square, 0, &items);
        tree
    }

    /// Recursively materialises the subtree for `square` at `level` from a
    /// Morton-contiguous, (code, user)-sorted range. Returns the node index
    /// (nodes are only created for non-empty squares; the root is created
    /// even when empty).
    fn build_range(&mut self, square: Square, level: usize, items: &[(u64, u32, Point)]) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(IqtNode {
            square,
            level,
            children: [None; 4],
            counts: Vec::new(),
            points: Vec::new(),
            omega_inf: None,
            omega_vrf: None,
        });

        if level == self.depth {
            let mut counts: Vec<(u32, u32)> = Vec::new();
            for &(_, u, _) in items {
                match counts.last_mut() {
                    Some((last, c)) if *last == u => *c += 1,
                    _ => counts.push((u, 1)),
                }
            }
            let node = &mut self.nodes[idx as usize];
            node.counts = counts;
            node.points = items.iter().map(|&(_, u, p)| (u, p)).collect();
            return idx;
        }

        let shift = 2 * (self.depth - 1 - level);
        let mut counts: Vec<(u32, u32)> = Vec::new();
        let mut start = 0usize;
        for q in 0..4u64 {
            let len = items[start..].partition_point(|&(code, _, _)| (code >> shift) & 3 <= q);
            let end = start + len;
            if end > start {
                let child =
                    self.build_range(square.child(q as usize), level + 1, &items[start..end]);
                self.nodes[idx as usize].children[q as usize] = Some(child);
                let merged = merge_counts(&counts, &self.nodes[child as usize].counts);
                counts = merged;
            }
            start = end;
        }
        debug_assert_eq!(start, items.len());
        self.nodes[idx as usize].counts = counts;
        idx
    }

    /// The Non-influence Radius `NIR = mMR(τ, r_max)`; `None` when no user
    /// in the dataset can ever be influenced (then every traversal returns
    /// empty sets).
    pub fn nir(&self) -> Option<f64> {
        self.nir
    }

    /// Maximum number of positions over all indexed users.
    pub fn r_max(&self) -> usize {
        self.r_max
    }

    /// Leaf-square diagonal `d̂` in km.
    pub fn leaf_diagonal(&self) -> f64 {
        self.root_square.diagonal() / (1u64 << self.depth) as f64
    }

    /// The indexed root region; [`IQuadTree::insert_user`] only accepts
    /// positions inside it.
    pub fn root_region(&self) -> Rect {
        self.root_square.rect()
    }

    /// The `⌈η⌉` table per level (index 0 = root). `None` entries mean the
    /// IS rule cannot fire at that scale.
    pub fn eta_table(&self) -> &[Option<usize>] {
        &self.eta_by_level
    }

    /// Shape statistics.
    pub fn stats(&self) -> IqtStats {
        IqtStats {
            nodes: self.nodes.len(),
            leaves: self.nodes.iter().filter(|n| n.is_leaf()).count(),
            depth: self.depth,
            positions: self.nodes.iter().map(|n| n.points.len()).sum(),
            users: self.n_users,
        }
    }

    /// Structural sanitizer: checks the node-hierarchy invariants the
    /// pruning rules rely on. Always callable; the body compiles away in
    /// release builds.
    ///
    /// # Panics
    /// Panics (debug builds only) when a child node's square escapes its
    /// parent's, levels are inconsistent, a count table is unsorted or
    /// disagrees with the children/points, or a cached `Ω` list is
    /// malformed.
    pub fn validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.eta_by_level.len(),
                self.depth + 1,
                "one eta entry per level"
            );
            for (i, node) in self.nodes.iter().enumerate() {
                assert!(node.level <= self.depth, "node below the leaf level");
                assert!(
                    node.counts.windows(2).all(|w| w[0].0 < w[1].0),
                    "node {i}: counts not sorted by user id"
                );
                for &(u, c) in &node.counts {
                    assert!((u as usize) < self.n_users, "node {i}: user out of range");
                    assert!(c > 0, "node {i}: zero count entry");
                }
                if node.level == self.depth {
                    assert!(node.is_leaf(), "leaf-level node with children");
                    // Leaf position multiset must reproduce the counts.
                    let total: u32 = node.counts.iter().map(|&(_, c)| c).sum();
                    assert_eq!(
                        total as usize,
                        node.points.len(),
                        "node {i}: counts disagree with stored points"
                    );
                } else {
                    assert!(node.points.is_empty(), "inner node {i} stores points");
                    let child_total: u32 = node
                        .children
                        .iter()
                        .flatten()
                        .map(|&c| {
                            let child = &self.nodes[c as usize];
                            assert_eq!(
                                child.level,
                                node.level + 1,
                                "child of node {i} skips a level"
                            );
                            // One-ulp slack: (origin + h) + h may round a
                            // hair past origin + side.
                            let tol = node.square.side * 1e-12;
                            let p = node.square.rect();
                            let c = child.square.rect();
                            assert!(
                                p.min.x - tol <= c.min.x
                                    && p.min.y - tol <= c.min.y
                                    && p.max.x + tol >= c.max.x
                                    && p.max.y + tol >= c.max.y,
                                "child square of node {i} escapes its parent"
                            );
                            child.counts.iter().map(|&(_, n)| n).sum::<u32>()
                        })
                        .sum();
                    let own_total: u32 = node.counts.iter().map(|&(_, c)| c).sum();
                    assert_eq!(
                        own_total, child_total,
                        "node {i}: counts disagree with its children"
                    );
                }
                for omega in [&node.omega_inf, &node.omega_vrf].into_iter().flatten() {
                    assert!(
                        omega.windows(2).all(|w| w[0] < w[1]),
                        "node {i}: cached omega list not sorted"
                    );
                    assert!(
                        omega.iter().all(|&u| (u as usize) < self.n_users),
                        "node {i}: cached omega user out of range"
                    );
                }
            }
        }
    }

    /// Inserts one more moving user into a built index (the streaming
    /// scenario of the related work: check-in streams keep arriving after
    /// deployment). Node counts along every affected path are updated and
    /// stale caches invalidated, so subsequent [`IQuadTree::traverse`]
    /// calls behave exactly as if the tree had been built with the user
    /// from the start. Returns the new user's id.
    ///
    /// `pf`/`tau` must match the values the tree was built with — they are
    /// needed to re-derive `NIR` when the new user raises `r_max`.
    ///
    /// # Errors
    /// Returns `Err` with the offending position when any position falls
    /// outside the indexed root region (the region is fixed at build time).
    pub fn insert_user<PF: ProbabilityFunction + ?Sized>(
        &mut self,
        user: &MovingUser,
        pf: &PF,
        tau: f64,
    ) -> Result<u32, Point> {
        let root_rect = self.root_square.rect();
        if let Some(p) = user.positions().iter().find(|p| !root_rect.contains(p)) {
            return Err(*p);
        }
        let uid = self.n_users as u32;
        self.n_users += 1;
        self.seen
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .mark
            .push(0);

        self.raise_r_max(user.len(), pf, tau);
        self.insert_positions(uid, user);

        // Leaves whose NIR window now sees the new positions carry stale
        // Ω_vrf caches: a leaf L is affected iff some new position lies in
        // L.rect.inflate(NIR) ⟺ L.rect intersects position ± NIR.
        if let Some(nir) = self.nir {
            let window = user.mbr().inflate(nir);
            self.invalidate_vrf_in(0, &window);
        }
        Ok(uid)
    }

    /// Replaces user `uid`'s trajectory: removes every indexed position of
    /// the id, then re-inserts the new positions under the **same** id —
    /// the check-in/move side of the streaming scenario, keeping ids
    /// stable for the surrounding influence state. Subsequent traversals
    /// behave exactly as if the tree had been built with the new
    /// trajectory from the start. Returns the number of old positions
    /// removed (0 when the id is unknown, in which case nothing is
    /// inserted either).
    ///
    /// `pf`/`tau` must match the build-time values, as for
    /// [`IQuadTree::insert_user`].
    ///
    /// # Errors
    /// Returns `Err` with the offending position when any new position
    /// falls outside the indexed root region; the tree is unchanged.
    pub fn move_user<PF: ProbabilityFunction + ?Sized>(
        &mut self,
        uid: u32,
        user: &MovingUser,
        pf: &PF,
        tau: f64,
    ) -> Result<usize, Point> {
        let root_rect = self.root_square.rect();
        if let Some(p) = user.positions().iter().find(|p| !root_rect.contains(p)) {
            return Err(*p);
        }
        if uid as usize >= self.n_users {
            return Ok(0);
        }
        let removed = self.remove_user(uid);
        self.raise_r_max(user.len(), pf, tau);
        self.insert_positions(uid, user);
        if let Some(nir) = self.nir {
            let window = user.mbr().inflate(nir);
            self.invalidate_vrf_in(0, &window);
        }
        Ok(removed)
    }

    /// Growing `r_max` loosens NIR: every cached Ω_vrf may be too small.
    fn raise_r_max<PF: ProbabilityFunction + ?Sized>(&mut self, r: usize, pf: &PF, tau: f64) {
        if r > self.r_max {
            self.r_max = r;
            self.nir = non_influence_radius(pf, tau, self.r_max);
            for node in &mut self.nodes {
                node.omega_vrf = None;
            }
        }
    }

    /// The shared position walk of [`IQuadTree::insert_user`] and
    /// [`IQuadTree::move_user`]: threads every position down its root→leaf
    /// path, updating node counts, storing leaf points, materialising
    /// missing child nodes and dropping stale caches along the way.
    /// Callers have already validated that every position lies inside the
    /// root region and that `uid` is allocated.
    fn insert_positions(&mut self, uid: u32, user: &MovingUser) {
        for p in user.positions() {
            let mut square = self.root_square;
            let mut idx = 0usize;
            for level in 0..=self.depth {
                let node = &mut self.nodes[idx];
                // Counts and cached rule results of this node change.
                match node.counts.binary_search_by_key(&uid, |&(u, _)| u) {
                    Ok(i) => node.counts[i].1 += 1,
                    Err(i) => node.counts.insert(i, (uid, 1)),
                }
                node.omega_inf = None;
                node.omega_vrf = None;
                if level == self.depth {
                    node.points.push((uid, *p));
                    break;
                }
                let q = square.quadrant_of(p);
                square = square.child(q);
                idx = match self.nodes[idx].children[q] {
                    Some(c) => c as usize,
                    None => {
                        let new_idx = self.nodes.len() as u32;
                        self.nodes.push(IqtNode {
                            square,
                            level: level + 1,
                            children: [None; 4],
                            counts: Vec::new(),
                            points: Vec::new(),
                            omega_inf: None,
                            omega_vrf: None,
                        });
                        self.nodes[idx].children[q] = Some(new_idx);
                        new_idx as usize
                    }
                };
            }
        }
    }

    fn invalidate_vrf_in(&mut self, idx: usize, window: &Rect) {
        let sq = self.nodes[idx].square.rect();
        if !sq.intersects(window) {
            return;
        }
        self.nodes[idx].omega_vrf = None;
        let children = self.nodes[idx].children;
        for child in children.into_iter().flatten() {
            self.invalidate_vrf_in(child as usize, window);
        }
    }

    /// Removes every position of user `uid` from the index (the expiry side
    /// of the streaming scenario: a user's records age out). The id itself
    /// stays allocated — it simply never appears in any traversal outcome
    /// again, exactly as if the user had never been inserted.
    ///
    /// `NIR` is *not* shrunk even when the removed user carried `r_max`:
    /// a too-large NIR is conservative (more verification, never a wrong
    /// decision), and recomputing `r_max` would require a full rescan.
    ///
    /// Returns the number of positions removed (0 when the id is unknown
    /// or was already removed).
    pub fn remove_user(&mut self, uid: u32) -> usize {
        if uid as usize >= self.n_users {
            return 0;
        }
        let removed = self.remove_user_rec(0, uid);
        if removed > 0 {
            if let Some(nir) = self.nir {
                // Stale Ω_vrf caches around the removed positions would
                // keep offering the user for verification; clear them. The
                // affected area is bounded by the removed positions, whose
                // extent the recursive pass tracked via `last_removed_mbr`.
                if let Some(mbr) = self.last_removed_mbr.take() {
                    let window = mbr.inflate(nir);
                    self.invalidate_vrf_in(0, &window);
                }
            }
        }
        removed
    }

    fn remove_user_rec(&mut self, idx: usize, uid: u32) -> usize {
        let Ok(pos) = self.nodes[idx]
            .counts
            .binary_search_by_key(&uid, |&(u, _)| u)
        else {
            return 0;
        };
        self.nodes[idx].counts.remove(pos);
        self.nodes[idx].omega_inf = None;
        self.nodes[idx].omega_vrf = None;
        if self.nodes[idx].level == self.depth {
            let points = std::mem::take(&mut self.nodes[idx].points);
            let before = points.len();
            let mut kept = Vec::with_capacity(before);
            for (u, p) in points {
                if u == uid {
                    // Track the extent of removed positions for the cache
                    // invalidation pass in `remove_user`.
                    match &mut self.last_removed_mbr {
                        Some(m) => m.expand_to(&p),
                        none => *none = Some(Rect::point(p)),
                    }
                } else {
                    kept.push((u, p));
                }
            }
            let removed = before - kept.len();
            self.nodes[idx].points = kept;
            return removed;
        }
        let children = self.nodes[idx].children;
        let mut removed = 0;
        for child in children.into_iter().flatten() {
            removed += self.remove_user_rec(child as usize, uid);
        }
        removed
    }

    /// Algorithm 3 (`Traverse`): classifies all users for the abstract
    /// facility at `v` using the IS and NIR rules, reusing every previously
    /// cached node result (the batch-wise property).
    pub fn traverse(&mut self, v: &Point) -> TraverseOutcome {
        let Some(nir) = self.nir else {
            // No user can ever be influenced: nothing to verify either.
            return TraverseOutcome::default();
        };

        if !self.root_square.contains(v) {
            // v lies outside the indexed region: no IS pruning is possible;
            // fall back to an exact NIR ball around v.
            let rect = Rect::point(*v).inflate(nir);
            let possible = self.users_with_position_in(&rect);
            return TraverseOutcome {
                influenced: Vec::new(),
                to_verify: possible,
            };
        }

        // Influenced users: union of Ω_inf along the root→leaf path of
        // existing nodes containing v (IS rule per level, Lemma 2 + the
        // enlargement hierarchy of Fig. 4). The geometric descent continues
        // even where no node is materialised so the NIR rectangle stays
        // tight around the true leaf square.
        let mut influenced: Vec<u32> = Vec::new();
        let mut square = self.root_square;
        let mut cursor: Option<u32> = Some(0);
        for level in 0..=self.depth {
            if let Some(ci) = cursor {
                self.ensure_omega_inf(ci as usize);
                // ensure_omega_inf has just materialised the cache; an
                // (unreachable) empty fallback keeps this panic-free.
                if let Some(inf) = self.nodes[ci as usize].omega_inf.as_deref() {
                    setops::union_into(&mut influenced, inf);
                }
            }
            if level < self.depth {
                let q = square.quadrant_of(v);
                cursor = cursor.and_then(|ci| self.nodes[ci as usize].children[q]);
                square = square.quadrants()[q];
            }
        }
        // `square` is now the geometric leaf square containing v, and
        // `cursor` the materialised leaf node when the path exists.
        let leaf_node = cursor.map(|c| c as usize);

        // NIR rule at the leaf: candidates for influence are exactly the
        // users with ≥1 position inside □_NIR(leaf). Cached on the
        // materialised leaf (batch-wise reuse); computed on the fly for the
        // rare facility sitting in an empty leaf square.
        let to_verify = if let Some(leaf) = leaf_node {
            debug_assert_eq!(self.nodes[leaf].level, self.depth);
            if self.nodes[leaf].omega_vrf.is_none() {
                let rect = self.nodes[leaf].square.rect().inflate(nir);
                let possible = self.users_with_position_in(&rect);
                self.nodes[leaf].omega_vrf = Some(possible);
            }
            // Filled two lines up when absent; the empty fallback is
            // unreachable but keeps this branch panic-free.
            let cached = self.nodes[leaf].omega_vrf.as_deref().unwrap_or(&[]);
            setops::difference(cached, &influenced)
        } else {
            let rect = square.rect().inflate(nir);
            let possible = self.users_with_position_in(&rect);
            setops::difference(&possible, &influenced)
        };
        TraverseOutcome {
            influenced,
            to_verify,
        }
    }

    /// A fresh per-worker scratch for [`IQuadTree::traverse_shared`].
    pub fn scratch(&self) -> TraverseScratch {
        TraverseScratch {
            stamp: Stamp {
                mark: vec![0; self.n_users],
                epoch: 0,
            },
            omega_inf: std::collections::BTreeMap::new(),
            omega_vrf: std::collections::BTreeMap::new(),
        }
    }

    /// Read-only [`IQuadTree::traverse`] for concurrent use: takes `&self`
    /// (the tree is `Sync`) and caches node results in the caller-owned
    /// `scratch` instead of on the nodes. The outcome is **bit-identical**
    /// to `traverse` for every `v` — both classify by the leaf square
    /// containing `v`, and the IS/NIR computations read only immutable
    /// build-time state (assertion-tested below and in the core crate's
    /// parallel-equivalence suite).
    ///
    /// Workers chunking a batch of facilities each hold one scratch, so
    /// facilities sharing a leaf within a chunk still pay a single
    /// computation (the batch-wise property, per worker).
    ///
    /// Scratch memos mirror node caches, so the same invalidation contract
    /// applies: after [`IQuadTree::insert_user`]/[`IQuadTree::remove_user`],
    /// discard old scratches and start fresh ones (the dedup marks
    /// self-heal, the memos do not).
    pub fn traverse_shared(&self, v: &Point, scratch: &mut TraverseScratch) -> TraverseOutcome {
        let Some(nir) = self.nir else {
            // No user can ever be influenced: nothing to verify either.
            return TraverseOutcome::default();
        };

        if !self.root_square.contains(v) {
            // v lies outside the indexed region: no IS pruning is possible;
            // fall back to an exact NIR ball around v.
            let rect = Rect::point(*v).inflate(nir);
            let possible = self.users_in_rect(&rect, &mut scratch.stamp);
            return TraverseOutcome {
                influenced: Vec::new(),
                to_verify: possible,
            };
        }

        // Root→leaf descent, mirroring `traverse` line for line; the only
        // difference is where Ω_inf/Ω_vrf get cached.
        let mut influenced: Vec<u32> = Vec::new();
        let mut square = self.root_square;
        let mut cursor: Option<u32> = Some(0);
        for level in 0..=self.depth {
            if let Some(ci) = cursor {
                if let Some(inf) = self.nodes[ci as usize].omega_inf.as_deref() {
                    // A pre-warmed tree (serial traversals before the
                    // parallel phase) already carries the node cache.
                    setops::union_into(&mut influenced, inf);
                } else {
                    let inf = scratch
                        .omega_inf
                        .entry(ci)
                        .or_insert_with(|| self.compute_omega_inf(ci as usize));
                    setops::union_into(&mut influenced, inf);
                }
            }
            if level < self.depth {
                let q = square.quadrant_of(v);
                cursor = cursor.and_then(|ci| self.nodes[ci as usize].children[q]);
                square = square.quadrants()[q];
            }
        }
        let leaf_node = cursor.map(|c| c as usize);

        let to_verify = if let Some(leaf) = leaf_node {
            debug_assert_eq!(self.nodes[leaf].level, self.depth);
            if let Some(vrf) = self.nodes[leaf].omega_vrf.as_deref() {
                setops::difference(vrf, &influenced)
            } else {
                let leaf_key = leaf as u32;
                if !scratch.omega_vrf.contains_key(&leaf_key) {
                    let rect = self.nodes[leaf].square.rect().inflate(nir);
                    let possible = self.users_in_rect(&rect, &mut scratch.stamp);
                    scratch.omega_vrf.insert(leaf_key, possible);
                }
                setops::difference(&scratch.omega_vrf[&leaf_key], &influenced)
            }
        } else {
            let rect = square.rect().inflate(nir);
            let possible = self.users_in_rect(&rect, &mut scratch.stamp);
            setops::difference(&possible, &influenced)
        };
        TraverseOutcome {
            influenced,
            to_verify,
        }
    }

    /// Computes (or reuses) `Ω_inf` of a node: users whose position count in
    /// the node square reaches the level's `⌈η⌉`.
    fn ensure_omega_inf(&mut self, idx: usize) {
        if self.nodes[idx].omega_inf.is_some() {
            return;
        }
        let omega = self.compute_omega_inf(idx);
        self.nodes[idx].omega_inf = Some(omega);
    }

    /// `Ω_inf` of a node from its counts alone (the IS rule, Lemma 2).
    /// Counts are user-sorted, so the filtered ids come out sorted.
    fn compute_omega_inf(&self, idx: usize) -> Vec<u32> {
        match self.eta_by_level[self.nodes[idx].level] {
            Some(eta) => {
                let eta = eta as u32;
                self.nodes[idx]
                    .counts
                    .iter()
                    .filter(|&&(_, c)| c >= eta)
                    .map(|&(u, _)| u)
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// Sorted ids of users having at least one position inside `rect`.
    ///
    /// Fully covered nodes contribute their whole user list without
    /// descending; partially covered leaves test exact positions.
    pub fn users_with_position_in(&self, rect: &Rect) -> Vec<u32> {
        // A poisoned lock only means another traversal panicked mid-query;
        // the stamp is epoch-guarded, so its state is still valid.
        let mut stamp = self
            .seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.users_in_rect(rect, &mut stamp)
    }

    /// [`IQuadTree::users_with_position_in`] driven by an explicit stamp —
    /// the tree's own (serial path) or a worker's scratch (shared path).
    /// The stamp only dedups; the sorted output is stamp-independent.
    fn users_in_rect(&self, rect: &Rect, stamp: &mut Stamp) -> Vec<u32> {
        stamp.epoch = stamp.epoch.wrapping_add(1);
        if stamp.epoch == 0 {
            // Epoch wrapped: clear stale marks once every 2^32 queries.
            stamp.mark.iter_mut().for_each(|m| *m = 0);
            stamp.epoch = 1;
        }
        if stamp.mark.len() < self.n_users {
            // Scratch created before an insert_user call: grow the marks.
            stamp.mark.resize(self.n_users, 0);
        }
        let mut out: Vec<u32> = Vec::new();
        self.collect_users(0, rect, stamp, &mut out);
        // `out` holds each user at most once (stamped); only a sort of the
        // unique ids remains.
        out.sort_unstable();
        out
    }

    fn collect_users(&self, idx: usize, rect: &Rect, stamp: &mut Stamp, out: &mut Vec<u32>) {
        let node = &self.nodes[idx];
        let sq = node.square.rect();
        if !sq.intersects(rect) {
            return;
        }
        let mark = |u: u32, stamp: &mut Stamp, out: &mut Vec<u32>| {
            let m = &mut stamp.mark[u as usize];
            if *m != stamp.epoch {
                *m = stamp.epoch;
                out.push(u);
            }
        };
        if rect.contains_rect(&sq) {
            for u in node.user_ids() {
                mark(u, stamp, out);
            }
            return;
        }
        if node.level == self.depth {
            for (u, p) in &node.points {
                if rect.contains(p) {
                    mark(*u, stamp, out);
                }
            }
            return;
        }
        for child in node.children.into_iter().flatten() {
            self.collect_users(child as usize, rect, stamp, out);
        }
    }
}

/// Merges two user-sorted `(user, count)` lists, summing counts.
fn merge_counts(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    if a.is_empty() {
        return b.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::{influences, Sigmoid};

    fn users_grid() -> Vec<MovingUser> {
        // 30 users, each with a small cluster of positions.
        (0..30)
            .map(|i| {
                let cx = (i % 6) as f64 * 3.0;
                let cy = (i / 6) as f64 * 3.0;
                MovingUser::new(
                    (0..5)
                        .map(|j| Point::new(cx + 0.1 * j as f64, cy + 0.07 * j as f64))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn build_shape_is_consistent() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let t = IQuadTree::build(&users, &pf, 0.7, 2.0);
        let s = t.stats();
        assert_eq!(s.users, 30);
        assert_eq!(s.positions, 150);
        assert!(s.leaves > 0 && s.nodes >= s.leaves);
        assert!((t.leaf_diagonal() - 2.0).abs() < 1e-9 || t.leaf_diagonal() < 2.0 + 1e-9);
        assert_eq!(t.r_max(), 5);
        assert_eq!(t.eta_table().len(), s.depth + 1);
    }

    #[test]
    fn traverse_classification_is_sound_and_complete() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.5;
        let mut t = IQuadTree::build(&users, &pf, tau, 2.0);
        for v in [
            Point::new(0.2, 0.2),
            Point::new(7.5, 7.5),
            Point::new(15.0, 12.0),
            Point::new(-3.0, -3.0), // outside the region
        ] {
            let out = t.traverse(&v);
            // influenced ∩ to_verify = ∅
            assert!(setops::intersect(&out.influenced, &out.to_verify).is_empty());
            for (uid, u) in users.iter().enumerate() {
                let truth = influences(&pf, &v, u.positions(), tau);
                let uid = uid as u32;
                if setops::contains(&out.influenced, uid) {
                    assert!(
                        truth,
                        "IS rule admitted a non-influenced user {uid} at {v:?}"
                    );
                } else if !setops::contains(&out.to_verify, uid) {
                    assert!(!truth, "NIR rule pruned an influenced user {uid} at {v:?}");
                }
            }
        }
    }

    #[test]
    fn batchwise_traverse_is_cached_and_stable() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let v1 = Point::new(1.0, 1.0);
        let v2 = Point::new(1.05, 1.02); // same leaf
        let a = t.traverse(&v1);
        let b1 = t.traverse(&v2);
        let b2 = t.traverse(&v2);
        assert_eq!(b1.influenced, b2.influenced);
        assert_eq!(b1.to_verify, b2.to_verify);
        // Same leaf ⇒ same pruning sets (IS/NIR act on the square).
        assert_eq!(a.influenced, b1.influenced);
        assert_eq!(a.to_verify, b1.to_verify);
    }

    #[test]
    fn unreachable_tau_yields_empty_outcome() {
        // Single-position users can never reach τ=0.7 under the sigmoid
        // (PF(0) = 0.5 < 0.7), so NIR is None and everything is pruned.
        let users: Vec<MovingUser> = (0..5)
            .map(|i| MovingUser::new(vec![Point::new(i as f64, 0.0)]))
            .collect();
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&users, &pf, 0.7, 2.0);
        assert!(t.nir().is_none());
        let out = t.traverse(&Point::new(0.0, 0.0));
        assert!(out.influenced.is_empty());
        assert!(out.to_verify.is_empty());
    }

    #[test]
    fn users_with_position_in_matches_brute_force() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let t = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let rect = Rect::new(Point::new(2.0, 2.0), Point::new(9.0, 9.0));
        let got = t.users_with_position_in(&rect);
        let mut want: Vec<u32> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.positions().iter().any(|p| rect.contains(p)))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn internal_counts_equal_sum_of_children() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let t = IQuadTree::build(&users, &pf, 0.5, 2.0);
        for node in &t.nodes {
            if node.is_leaf() {
                continue;
            }
            let mut merged: Vec<(u32, u32)> = Vec::new();
            for child in node.children.into_iter().flatten() {
                merged = merge_counts(&merged, &t.nodes[child as usize].counts);
            }
            assert_eq!(node.counts, merged);
        }
        // Root counts cover every position exactly once.
        let total: u32 = t.nodes[0].counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, users.iter().map(|u| u.len()).sum::<usize>());
    }

    #[test]
    fn morton_order_matches_geometric_descent() {
        let root = Square::new(Point::new(0.0, 0.0), 8.0);
        for p in [
            Point::new(0.5, 0.5),
            Point::new(7.9, 0.1),
            Point::new(4.0, 4.0), // exactly on every split line
            Point::new(3.999, 4.001),
        ] {
            let code = morton_code(&root, 3, &p);
            // Re-descend and check each 2-bit group matches quadrant_of.
            let mut sq = root;
            for level in 0..3 {
                let q = sq.quadrant_of(&p);
                assert_eq!(
                    ((code >> (2 * (2 - level))) & 3) as usize,
                    q,
                    "level {level} point {p:?}"
                );
                sq = sq.child(q);
            }
        }
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.5;
        // Batch tree over all users.
        let mut batch = IQuadTree::build(&users, &pf, tau, 2.0);
        // Incremental tree: first 10 users at build time, rest inserted —
        // with traversals interleaved so caches exist and must be
        // invalidated correctly.
        let mut inc = IQuadTree::build(&users[..10], &pf, tau, 2.0);
        let probes: Vec<Point> = (0..8)
            .map(|i| Point::new((i % 4) as f64 * 4.0 + 0.3, (i / 4) as f64 * 6.0 + 0.4))
            .collect();
        for (i, u) in users[10..].iter().enumerate() {
            if i % 3 == 0 {
                let _ = inc.traverse(&probes[i % probes.len()]);
            }
            let uid = inc.insert_user(u, &pf, tau).unwrap();
            assert_eq!(uid as usize, 10 + i);
        }
        for v in &probes {
            let a = batch.traverse(v);
            let b = inc.traverse(v);
            assert_eq!(a.influenced, b.influenced, "probe {v:?}");
            assert_eq!(a.to_verify, b.to_verify, "probe {v:?}");
        }
        assert_eq!(batch.stats().positions, inc.stats().positions);
    }

    #[test]
    fn insert_raising_r_max_stays_sound() {
        let pf = Sigmoid::paper_default();
        let tau = 0.7;
        // Start with small users (r = 2) and cache a traversal.
        let small: Vec<MovingUser> = (0..5)
            .map(|i| {
                MovingUser::new(vec![
                    Point::new(i as f64, 0.0),
                    Point::new(i as f64 + 0.1, 0.1),
                ])
            })
            .collect();
        let mut t = IQuadTree::build(&small, &pf, tau, 2.0);
        let v = Point::new(2.0, 0.0);
        let _ = t.traverse(&v);
        let old_nir = t.nir();
        // Insert a 20-position user far away but within the old extent...
        // (positions must stay inside the root square).
        let root = t.root_square.rect();
        let big = MovingUser::new(
            (0..20)
                .map(|j| {
                    Point::new(
                        (root.min.x + 0.2 + 0.01 * j as f64).min(root.max.x),
                        (root.min.y + 0.2).min(root.max.y),
                    )
                })
                .collect(),
        );
        let uid = t.insert_user(&big, &pf, tau).unwrap();
        assert!(t.nir() >= old_nir, "NIR must not shrink");
        // Soundness after the update.
        let out = t.traverse(&v);
        let mut all: Vec<MovingUser> = small;
        all.push(big);
        for (o, u) in all.iter().enumerate() {
            let truth = influences(&pf, &v, u.positions(), tau);
            let o = o as u32;
            if setops::contains(&out.influenced, o) {
                assert!(truth);
            } else if !setops::contains(&out.to_verify, o) {
                assert!(!truth, "user {o} wrongly pruned after insert");
            }
        }
        assert_eq!(uid, 5);
    }

    #[test]
    fn remove_user_behaves_as_never_inserted() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.5;
        // Reference: a tree over all users except #7 and #19.
        let kept: Vec<MovingUser> = users
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 7 && i != 19)
            .map(|(_, u)| u.clone())
            .collect();
        let mut reference = IQuadTree::build(&kept, &pf, tau, 2.0);
        // Under test: full tree, traversed (to fill caches), then pruned.
        let mut t = IQuadTree::build(&users, &pf, tau, 2.0);
        let probes: Vec<Point> = (0..6)
            .map(|i| Point::new((i % 3) as f64 * 5.0 + 0.2, (i / 3) as f64 * 7.0 + 0.3))
            .collect();
        for v in &probes {
            let _ = t.traverse(v);
        }
        assert_eq!(t.remove_user(7), users[7].len());
        assert_eq!(t.remove_user(19), users[19].len());
        assert_eq!(t.remove_user(7), 0, "double removal is a no-op");
        assert_eq!(t.remove_user(9999), 0, "unknown id is a no-op");
        // Every traversal must match the reference, modulo the id shift
        // (reference ids skip the removed users).
        let shift = |id: u32| -> u32 {
            // Map reference id back to original id space.
            let mut orig = id;
            if orig >= 7 {
                orig += 1;
            }
            if orig >= 19 {
                orig += 1;
            }
            orig
        };
        for v in &probes {
            let want = reference.traverse(v);
            let got = t.traverse(v);
            let want_inf: Vec<u32> = want.influenced.iter().map(|&i| shift(i)).collect();
            let want_vrf: Vec<u32> = want.to_verify.iter().map(|&i| shift(i)).collect();
            assert_eq!(got.influenced, want_inf, "probe {v:?}");
            assert_eq!(got.to_verify, want_vrf, "probe {v:?}");
        }
        assert_eq!(
            t.stats().positions,
            users.iter().map(|u| u.len()).sum::<usize>() - users[7].len() - users[19].len()
        );
    }

    #[test]
    fn insert_then_remove_roundtrip() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.6;
        let mut reference = IQuadTree::build(&users, &pf, tau, 2.0);
        let mut t = IQuadTree::build(&users, &pf, tau, 2.0);
        let newcomer = MovingUser::new(vec![
            Point::new(3.0, 3.0),
            Point::new(3.1, 3.2),
            Point::new(2.9, 3.1),
        ]);
        let probe = Point::new(3.05, 3.05);
        let _ = t.traverse(&probe); // fill caches before the churn
        let uid = t.insert_user(&newcomer, &pf, tau).unwrap();
        let _ = t.traverse(&probe);
        assert_eq!(t.remove_user(uid), 3);
        let a = reference.traverse(&probe);
        let b = t.traverse(&probe);
        assert_eq!(a.influenced, b.influenced);
        assert_eq!(a.to_verify, b.to_verify);
    }

    #[test]
    fn insert_out_of_bounds_is_rejected() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let far = MovingUser::new(vec![Point::new(1e6, 1e6)]);
        let err = t.insert_user(&far, &pf, 0.5);
        assert_eq!(err, Err(Point::new(1e6, 1e6)));
        // A rejected insert leaves the tree untouched and queryable.
        let out = t.traverse(&Point::new(0.5, 0.5));
        assert!(!out.to_verify.is_empty() || !out.influenced.is_empty());
    }

    #[test]
    fn tree_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IQuadTree>();
    }

    #[test]
    fn traverse_shared_matches_traverse() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let mut t = IQuadTree::build(&users, &pf, 0.5, 2.0);
        let probes: Vec<Point> = vec![
            Point::new(0.2, 0.2),
            Point::new(7.5, 7.5),
            Point::new(15.0, 12.0),
            Point::new(1.0, 1.0),
            Point::new(1.05, 1.02), // same leaf as the previous probe
            Point::new(-3.0, -3.0), // outside the region
        ];
        // Cold tree, one scratch reused across probes (batch-wise path).
        let mut scratch = t.scratch();
        let shared: Vec<TraverseOutcome> = probes
            .iter()
            .map(|v| t.traverse_shared(v, &mut scratch))
            .collect();
        // Reference outcomes from the &mut self path.
        for (v, got) in probes.iter().zip(&shared) {
            let want = t.traverse(v);
            assert_eq!(got.influenced, want.influenced, "probe {v:?}");
            assert_eq!(got.to_verify, want.to_verify, "probe {v:?}");
        }
        // Warm tree (node caches now populated): shared must still agree.
        let mut warm_scratch = t.scratch();
        for (v, want) in probes.iter().zip(&shared) {
            let got = t.traverse_shared(v, &mut warm_scratch);
            assert_eq!(got.influenced, want.influenced, "warm probe {v:?}");
            assert_eq!(got.to_verify, want.to_verify, "warm probe {v:?}");
        }
    }

    #[test]
    fn traverse_shared_from_worker_threads() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.5;
        let t = IQuadTree::build(&users, &pf, tau, 2.0);
        let probes: Vec<Point> = (0..24)
            .map(|i| Point::new((i % 6) as f64 * 2.7 + 0.3, (i / 6) as f64 * 3.1 + 0.2))
            .collect();
        // Serial reference on a clone (traverse needs &mut).
        let mut serial_tree = t.clone();
        let want: Vec<TraverseOutcome> = probes.iter().map(|v| serial_tree.traverse(v)).collect();
        // 4 workers over contiguous chunks, each with a private scratch.
        let got: Vec<TraverseOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = probes
                .chunks(6)
                .map(|chunk| {
                    let tree = &t;
                    scope.spawn(move || {
                        let mut scratch = tree.scratch();
                        chunk
                            .iter()
                            .map(|v| tree.traverse_shared(v, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for ((v, a), b) in probes.iter().zip(&want).zip(&got) {
            assert_eq!(a.influenced, b.influenced, "probe {v:?}");
            assert_eq!(a.to_verify, b.to_verify, "probe {v:?}");
        }
    }

    #[test]
    fn stale_scratch_survives_insert() {
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let tau = 0.5;
        let mut t = IQuadTree::build(&users, &pf, tau, 2.0);
        let mut scratch = t.scratch(); // created before the insert
        let newcomer = MovingUser::new(vec![Point::new(3.0, 3.0), Point::new(3.1, 3.2)]);
        t.insert_user(&newcomer, &pf, tau).unwrap();
        let probe = Point::new(3.05, 3.05);
        let got = t.traverse_shared(&probe, &mut scratch);
        let want = t.traverse(&probe);
        assert_eq!(got.influenced, want.influenced);
        assert_eq!(got.to_verify, want.to_verify);
    }

    #[test]
    fn eta_table_grows_with_level_diagonal() {
        // Larger squares (smaller level index) need at least as many
        // positions; where defined, η must be non-increasing with level.
        let users = users_grid();
        let pf = Sigmoid::paper_default();
        let t = IQuadTree::build(&users, &pf, 0.3, 2.0);
        let table = t.eta_table();
        let defined: Vec<usize> = table.iter().flatten().copied().collect();
        for w in defined.windows(2) {
            assert!(w[0] >= w[1], "eta must shrink toward leaves: {table:?}");
        }
    }
}
