// Repro: positive-part-of-total bound is inadmissible for mixed-sign models.
use mc2ls_core::algorithms::exact;
use mc2ls_core::InfluenceSets;
use mc2ls_influence::CompetitionModel;

struct Dilution;
impl CompetitionModel for Dilution {
    fn name(&self) -> &'static str { "dilution" }
    fn class_contribution(&self, w: usize, n: u32) -> f64 {
        if w == 0 { f64::from(n) } else { -0.25 * f64::from(n) }
    }
    fn is_submodular(&self) -> bool { false }
}

fn main() {
    // users 0..=7: class0 (+1). users 8..=32: class1 (-0.25), 25 of them.
    // C: covers users 0,1 (clean)                  -> cinf = 2
    // B: covers users 2..=7? no: B covers 8 positives? keep my analysis:
    // B: 8 clean users (0..8? overlap with C?) make disjoint:
    //   C: users 0,1            -> +2
    //   B: users 2..=9 (8 clean) + contested 16..=40 (25) -> 8 - 6.25 = 1.75
    //   A: users 10..=15 (6 clean) + same contested 16..=40 -> 6 - 6.25 = -0.25
    let n_users = 41u32;
    let mut f_count = vec![0u32; n_users as usize];
    for u in 16..41 { f_count[u] = 1; }
    let c: Vec<u32> = vec![0,1];
    let mut b: Vec<u32> = (2..10).collect(); b.extend(16..41);
    let mut a: Vec<u32> = (10..16).collect(); a.extend(16..41);
    let sets = InfluenceSets::new(vec![c, b, a], f_count.clone());
    let sol = exact::solve_exact_model(&sets, 2, &Dilution);
    println!("selected = {:?}, cinf = {}", sol.selected, sol.cinf);
    // brute force over all subsets of size <= 2
    let cinf = |set: &[u32]| {
        let mut covered = std::collections::BTreeSet::new();
        for &cand in set { for &o in sets.omega(cand as usize) { covered.insert(o); } }
        covered.iter().map(|&o| if f_count[o as usize]==0 {1.0} else {-0.25}).sum::<f64>()
    };
    let mut best = (0.0, vec![]);
    for s in [vec![0u32],vec![1],vec![2],vec![0,1],vec![0,2],vec![1,2]] {
        let v = cinf(&s);
        if v > best.0 { best = (v, s.clone()); }
        println!("  {:?} -> {}", s, v);
    }
    println!("brute-force best = {:?} value {}", best.1, best.0);
    assert_eq!(sol.cinf, best.0, "exact oracle missed the optimum");
}
