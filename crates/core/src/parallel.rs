//! Multi-threaded execution primitives (std scoped threads).
//!
//! The influence relationships of distinct abstract facilities are
//! independent, so every expensive phase of the pipeline parallelises by
//! *contiguous chunking*: the item index space `0..n` is split into at most
//! `threads` contiguous ranges, each worker computes its range privately,
//! and the per-chunk results are stitched back **in chunk order**. Because
//! chunk boundaries never change what is computed for an item — only which
//! thread computes it — the stitched output is bit-identical to a serial
//! run for any thread count (assertion-tested in
//! `tests/parallel_equivalence.rs` and below).
//!
//! [`map_chunks`] is the one primitive; [`map_items`] and [`sum_folds`] are
//! the two stitching conventions the pipeline needs (per-item results in
//! order; order-independent partial aggregates).

use crate::verify::{Verifier, VerifyCounts};
use crate::{InfluenceSets, Problem};
use mc2ls_influence::ProbabilityFunction;
use std::ops::Range;

/// Splits `0..n_items` into at most `threads` contiguous ranges, runs
/// `work` on each range in parallel, and returns the per-chunk results in
/// chunk order. With one thread (or zero/one item) the work runs on the
/// calling thread — no spawn cost on the serial path.
///
/// # Panics
/// Panics when `threads == 0`, or when a worker panics.
pub fn map_chunks<T, F>(n_items: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let threads = threads.min(n_items.max(1));
    if threads == 1 {
        return vec![work(0..n_items)];
    }
    let chunk = n_items.div_ceil(threads);
    let mut out = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(n_items);
                let hi = (lo + chunk).min(n_items);
                scope.spawn(move || work(lo..hi))
            })
            .collect();
        out.extend(
            handles
                .into_iter()
                // lint:allow(panic-path): join only fails when the worker panicked; re-raising on the spawner is intended
                .map(|h| h.join().expect("worker panicked")),
        );
    });
    out
}

/// Runs `f` once per item index and returns the results in item order —
/// identical to `(0..n_items).map(f).collect()` for any thread count.
pub fn map_items<R, F>(n_items: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_chunks(n_items, threads, |range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Runs `fold` per chunk (each worker folding into a fresh `init()`
/// accumulator) and combines the partial accumulators **in chunk order**
/// with `merge`. For commutative merges (sums, max) the result is identical
/// to a serial fold for any thread count.
pub fn sum_folds<A, F, I, M>(n_items: usize, threads: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
    M: Fn(&mut A, A),
{
    let parts = map_chunks(n_items, threads, |range| {
        let mut acc = init();
        fold(&mut acc, range);
        acc
    });
    let mut parts = parts.into_iter();
    // lint:allow(panic-path): map_chunks always yields at least one chunk even for empty input
    let mut total = parts.next().expect("map_chunks returns >= 1 chunk");
    for part in parts {
        merge(&mut total, part);
    }
    total
}

/// Exhaustive influence computation across `threads` workers. Equivalent to
/// the Baseline's sets (same `omega_c`, same `f_count`), just faster on
/// multi-core machines.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn baseline_influence_sets_parallel<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    threads: usize,
) -> InfluenceSets {
    baseline_influence_sets_counted(problem, threads).0
}

/// [`baseline_influence_sets_parallel`] plus the verification counters.
/// The blocked substrate is built once on the calling thread and shared by
/// reference (it is immutable and `Sync`); each worker counts on private
/// scratch (no atomic contention), and the per-chunk totals sum to exactly
/// the serial counts because every stop is decided per pair.
///
/// # Panics
/// Panics when `threads == 0`.
pub(crate) fn baseline_influence_sets_counted<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    threads: usize,
) -> (InfluenceSets, VerifyCounts) {
    assert!(threads >= 1, "need at least one worker thread");
    let n_users = problem.n_users();
    let verifier = Verifier::build(problem);

    // Candidates: each worker owns a disjoint chunk of candidate indices.
    let cand_chunks = map_chunks(problem.n_candidates(), threads, |range| {
        let mut scratch = verifier.scratch();
        let lists: Vec<Vec<u32>> = range
            .map(|ci| {
                let c = &problem.candidates[ci];
                (0..n_users as u32)
                    .filter(|&o| verifier.influences(c, o, &mut scratch))
                    .collect()
            })
            .collect();
        (lists, scratch.counts())
    });
    let mut omega_c = Vec::with_capacity(problem.n_candidates());
    let mut counts = VerifyCounts::default();
    for (lists, part) in cand_chunks {
        omega_c.extend(lists);
        counts.merge(part);
    }

    // Facilities: workers produce partial |F_o| vectors, summed afterwards.
    let (f_count, fac_counts) = sum_folds(
        problem.n_facilities(),
        threads,
        || (vec![0u32; n_users], verifier.scratch()),
        |(local, scratch), range| {
            for f in &problem.facilities[range] {
                for (o, cnt) in local.iter_mut().enumerate() {
                    if verifier.influences(f, o as u32, scratch) {
                        *cnt += 1;
                    }
                }
            }
        },
        |(total, t_scratch), (part, p_scratch)| {
            for (t, p) in total.iter_mut().zip(part) {
                *t += p;
            }
            t_scratch.absorb(&p_scratch);
        },
    );

    let mut total = counts;
    total.merge(fac_counts.counts());
    (InfluenceSets::new(omega_c, f_count), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn problem(seed: u64) -> Problem {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let users: Vec<MovingUser> = (0..80)
            .map(|_| {
                let cx = next() * 20.0;
                let cy = next() * 20.0;
                MovingUser::new(
                    (0..1 + (next() * 6.0) as usize)
                        .map(|_| Point::new(cx + next(), cy + next()))
                        .collect(),
                )
            })
            .collect();
        let f = (0..15)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        let c = (0..12)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        Problem::new(users, f, c, 3, 0.5, Sigmoid::paper_default())
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let (serial, _, _) = baseline::influence_sets(&p);
            for threads in [1usize, 2, 4, 7] {
                let par = baseline_influence_sets_parallel(&p, threads);
                assert_eq!(serial, par, "threads={threads}");
            }
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let p = problem(9);
        let par = baseline_influence_sets_parallel(&p, 64);
        assert_eq!(par.n_candidates(), p.n_candidates());
    }

    #[test]
    fn map_items_matches_serial_map() {
        for threads in [1usize, 2, 3, 7, 16] {
            let got = map_items(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(map_items(0, 4, |i| i).is_empty());
    }

    #[test]
    fn sum_folds_matches_serial_fold() {
        for threads in [1usize, 2, 5, 11] {
            let total = sum_folds(
                100,
                threads,
                || 0u64,
                |acc, range| *acc += range.map(|i| i as u64).sum::<u64>(),
                |a, b| *a += b,
            );
            assert_eq!(total, 4950, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let p = problem(4);
        baseline_influence_sets_parallel(&p, 0);
    }
}
