//! Multi-threaded influence computation (crossbeam scoped threads).
//!
//! The influence relationships of distinct abstract facilities are
//! independent, so the exhaustive evaluation parallelises embarrassingly:
//! candidates and facilities are chunked across worker threads, each worker
//! fills its slice of `Ω_c`/`|F_o|` privately, and results are stitched
//! without locks. Output is bit-identical to [`crate::algorithms::baseline`]
//! (assertion-tested), making this a drop-in accelerator for the unpruned
//! path — useful when validating pruned algorithms against ground truth on
//! large instances.

use crate::{InfluenceSets, Problem};
use mc2ls_influence::{influences, ProbabilityFunction};

/// Exhaustive influence computation across `threads` workers. Equivalent to
/// the Baseline's sets (same `omega_c`, same `f_count`), just faster on
/// multi-core machines.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn baseline_influence_sets_parallel<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    threads: usize,
) -> InfluenceSets {
    assert!(threads >= 1, "need at least one worker thread");
    let n_users = problem.n_users();
    let n_cands = problem.n_candidates();
    let n_facs = problem.n_facilities();

    // Candidates: each worker owns a disjoint chunk of candidate indices.
    let chunk = n_cands.div_ceil(threads).max(1);
    let mut omega_c: Vec<Vec<u32>> = Vec::with_capacity(n_cands);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = problem
            .candidates
            .chunks(chunk)
            .map(|cands| {
                scope.spawn(move |_| {
                    cands
                        .iter()
                        .map(|c| {
                            (0..n_users as u32)
                                .filter(|&o| {
                                    influences(
                                        &problem.pf,
                                        c,
                                        problem.users[o as usize].positions(),
                                        problem.tau,
                                    )
                                })
                                .collect::<Vec<u32>>()
                        })
                        .collect::<Vec<Vec<u32>>>()
                })
            })
            .collect();
        for h in handles {
            omega_c.extend(h.join().expect("worker panicked"));
        }
    })
    .expect("thread scope failed");

    // Facilities: workers produce partial |F_o| vectors, summed afterwards.
    let fchunk = n_facs.div_ceil(threads).max(1);
    let mut f_count = vec![0u32; n_users];
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = problem
            .facilities
            .chunks(fchunk)
            .map(|facs| {
                scope.spawn(move |_| {
                    let mut local = vec![0u32; n_users];
                    for f in facs {
                        for (o, cnt) in local.iter_mut().enumerate() {
                            if influences(&problem.pf, f, problem.users[o].positions(), problem.tau)
                            {
                                *cnt += 1;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("worker panicked");
            for (total, part) in f_count.iter_mut().zip(local) {
                *total += part;
            }
        }
    })
    .expect("thread scope failed");

    InfluenceSets::new(omega_c, f_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn problem(seed: u64) -> Problem {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let users: Vec<MovingUser> = (0..80)
            .map(|_| {
                let cx = next() * 20.0;
                let cy = next() * 20.0;
                MovingUser::new(
                    (0..1 + (next() * 6.0) as usize)
                        .map(|_| Point::new(cx + next(), cy + next()))
                        .collect(),
                )
            })
            .collect();
        let f = (0..15)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        let c = (0..12)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        Problem::new(users, f, c, 3, 0.5, Sigmoid::paper_default())
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let (serial, _, _) = baseline::influence_sets(&p);
            for threads in [1usize, 2, 4, 7] {
                let par = baseline_influence_sets_parallel(&p, threads);
                assert_eq!(serial.omega_c, par.omega_c, "threads={threads}");
                assert_eq!(serial.f_count, par.f_count, "threads={threads}");
            }
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let p = problem(9);
        let par = baseline_influence_sets_parallel(&p, 64);
        assert_eq!(par.n_candidates(), p.n_candidates());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let p = problem(4);
        baseline_influence_sets_parallel(&p, 0);
    }
}
