//! Incremental maintenance of the influence state under a live user
//! stream: the [`UpdateEngine`] applies [`UserUpdate`] events
//! (insert/delete/move) against the `InfluenceSets`/`InvertedIndex`/count
//! state without rebuilding it, so per-event work is bounded by the small
//! **flip set** of sites whose `Pr_v(o) ≥ τ` decision can actually change
//! — never by `|C|·|Ω|`.
//!
//! # Flip-set bound
//!
//! An event only touches one user `o`, so the only decisions that can flip
//! are the pairs `(site, o)` — the event's row in the inverted orientation.
//! Two nested bounds shrink that row before the verification kernel runs:
//!
//! 1. **MBR / minimum-influence radius.** With `r = |o|` positions, even
//!    `r` positions at the same distance `d` cannot reach `τ` once
//!    `d > mMR(τ, PF, r)` ([`min_max_radius`], paper Corollary 2). A site
//!    whose distance to the event user's MBR exceeds that radius (plus a
//!    relative slack of `1e-6`, far above any rounding in the analytic
//!    inverse) is pruned with **zero** PF evaluations.
//! 2. **η position-count threshold in kernel arithmetic.** For survivors,
//!    one PF evaluation at the MBR distance `d_min` bounds the user's
//!    reach: `Pr_v(o) ≤ 1 − (1 − PF(d_min))^r`. This is exactly the
//!    `r < η(τ, PF, d_min)` test ([`crate::update`] ↔
//!    [`mc2ls_influence::eta_count`]), but evaluated through the **same
//!    left-folded product the kernel computes** — each true factor
//!    `1 − PF(dᵢ)` is ≥ the bound factor (distances are ≥ `d_min` and PF
//!    is non-increasing), and IEEE multiplication is monotone, so a
//!    pruned site is one the kernel itself would reject. No analytic
//!    `powf`/`ln` roundoff can ever disagree with verification.
//!
//! Sites inside both bounds are re-verified with the blocked vectorised
//! kernel over a single-user [`PositionBlocks`] layout (per-block MBR and
//! cumulative bounds apply inside), whose decisions are identical to the
//! plain exact kernel in every mode.
//!
//! Bound 1 assumes the analytic radius is consistent with `PF` at the
//! `1e-6` scale — true for every strictly decreasing PF in this workspace;
//! bound 2 and the kernel carry the bit-exactness guarantee on their own.
//!
//! # Buffer / tombstone layout
//!
//! The compacted CSRs stay immutable between compactions. Diffs live in an
//! append-side log keyed by user: `overrides[o]` holds `o`'s **current**
//! sorted candidate row (replacing its compacted inverted row), and a dead
//! `alive[o]` flag is the tombstone. The per-candidate weight-class count
//! matrix — the only state greedy selection reads — is patched **in
//! place** on every event (integer decrements/increments, no drift), so a
//! followup [`UpdateEngine::solve`] seeds the decremental selector
//! directly from the patched counts. [`UpdateEngine::compact`] folds the
//! log back into flat CSRs (dropping tombstones, densely remapping ids in
//! slot order) and is the only O(instance) step; nothing ever re-verifies.

use crate::{greedy, InfluenceSets, InvertedIndex, Problem, SelectionStats, Solution};
use mc2ls_geo::Point;
use mc2ls_influence::{
    influences_blocked_counted, influences_blocked_exact_counted, influences_counted,
    min_max_radius, resolve_block_size, BlockCounters, BlockScratch, EvalCounter, MovingUser,
    PositionBlocks, ProbabilityFunction,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One event of the live user stream.
#[derive(Debug, Clone, PartialEq)]
pub enum UserUpdate {
    /// A new user appears with an initial trajectory.
    Insert {
        /// The user's position multiset (must be non-empty and finite).
        positions: Vec<Point>,
    },
    /// User `user` leaves the instance.
    Delete {
        /// Engine-internal id of the user to remove.
        user: u32,
    },
    /// User `user`'s trajectory is replaced wholesale (a check-in appends
    /// one position to the current trajectory and moves).
    Move {
        /// Engine-internal id of the user to update.
        user: u32,
        /// The replacement position multiset (non-empty, finite).
        positions: Vec<Point>,
    },
}

/// Why an event was rejected. Rejected events leave the engine unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The user id was never allocated.
    UnknownUser(u32),
    /// The user id refers to an already deleted user.
    DeadUser(u32),
    /// Insert/Move carried an empty position list.
    EmptyPositions,
    /// Insert/Move carried a non-finite coordinate.
    NonFinitePosition,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownUser(o) => write!(f, "unknown user id {o}"),
            UpdateError::DeadUser(o) => write!(f, "user {o} was already deleted"),
            UpdateError::EmptyPositions => write!(f, "a user needs at least one position"),
            UpdateError::NonFinitePosition => write!(f, "positions must be finite"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Work counters accumulated over the engine's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Events applied (rejected events are not counted).
    pub events: u64,
    /// Inserts among [`UpdateStats::events`].
    pub inserts: u64,
    /// Deletes among [`UpdateStats::events`].
    pub deletes: u64,
    /// Moves among [`UpdateStats::events`].
    pub moves: u64,
    /// Sites (candidates + facilities) excluded by the flip-set bounds
    /// without running the verification kernel.
    pub sites_pruned: u64,
    /// Sites re-verified with the kernel.
    pub sites_checked: u64,
    /// Site decisions that actually flipped (row symmetric difference for
    /// moves; the full row for inserts/deletes).
    pub flipped: u64,
    /// PF evaluations spent (η bound evaluations + kernel evaluations).
    pub prob_evals: u64,
    /// Compactions folding the log back into flat CSRs.
    pub compactions: u64,
}

/// Scratch shared by the single-user verification calls of one event.
struct EventScratch {
    bounds: BlockScratch,
    evals: EvalCounter,
    blocks: BlockCounters,
}

/// Live influence state under insert/delete/move events. See the module
/// docs for the flip-set bounds and the buffer layout. Between
/// compactions, ids are **slot ids**: dense at construction, inserts
/// append new slots, deletes tombstone theirs. [`UpdateEngine::compact`]
/// renumbers the live slots densely (in slot order) and returns the remap
/// so external id maps can follow.
#[derive(Clone)]
pub struct UpdateEngine<PF: ProbabilityFunction + Clone> {
    pf: PF,
    tau: f64,
    pf_exact: bool,
    /// Resolved verification block size (`None` = plain kernel), fixed at
    /// construction — block size never changes decisions.
    resolved: Option<usize>,
    threads: usize,
    candidates: Vec<Point>,
    facilities: Vec<Point>,
    /// Per-slot trajectories; tombstoned slots keep their last value.
    users: Vec<MovingUser>,
    /// Tombstone flags, one per slot.
    alive: Vec<bool>,
    /// Compacted forward CSR (candidate → live users at last compaction).
    base: InfluenceSets,
    /// Compacted inverted CSR (user → candidates at last compaction).
    inverted: InvertedIndex,
    /// Append-side log: a slot's current candidate row when it diverged
    /// from the compacted CSR (always sorted; inserted slots always
    /// present). Deterministically ordered — never a hash map.
    overrides: BTreeMap<u32, Vec<u32>>,
    /// Current `|F_o|` per slot.
    f_count: Vec<u32>,
    /// Row-major candidate × weight-class count matrix, patched in place.
    counts: Vec<u32>,
    /// Column count (stride) of `counts`; grows when a live `|F_o|`
    /// exceeds it, narrows back at compaction.
    n_classes: usize,
    dirty: bool,
    stats: UpdateStats,
}

impl<PF: ProbabilityFunction + Clone> UpdateEngine<PF> {
    /// Builds the engine from a problem, computing the initial influence
    /// state with the IQuad-tree pipeline. Prefer
    /// [`UpdateEngine::from_sets`] when the sets already exist.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn new(problem: &Problem<PF>, threads: usize) -> Self {
        let (sets, _, _) = crate::algorithms::influence_sets_threaded(
            problem,
            crate::Method::Iqt(crate::IqtConfig::default()),
            threads,
        );
        Self::from_sets(problem, sets, threads)
    }

    /// Wraps an already computed [`InfluenceSets`] for `problem` (any
    /// method — they all produce identical sets).
    ///
    /// # Panics
    /// Panics when the sets' shape disagrees with the problem or when
    /// `threads == 0`.
    pub fn from_sets(problem: &Problem<PF>, sets: InfluenceSets, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        assert_eq!(sets.n_users(), problem.n_users(), "sets/problem user count");
        assert_eq!(
            sets.n_candidates(),
            problem.n_candidates(),
            "sets/problem candidate count"
        );
        let n = sets.n_candidates();
        let n_classes = sets.n_weight_classes();
        let counts: Vec<u32> = crate::parallel::map_chunks(n, threads, |range| {
            let mut part = vec![0u32; range.len() * n_classes];
            for (i, c) in range.enumerate() {
                let row = &mut part[i * n_classes..(i + 1) * n_classes];
                for &o in sets.omega(c) {
                    row[sets.f_count[o as usize] as usize] += 1;
                }
            }
            part
        })
        .concat();
        let inverted = InvertedIndex::build(&sets, threads);
        UpdateEngine {
            pf: problem.pf.clone(),
            tau: problem.tau,
            pf_exact: problem.pf_exact,
            resolved: resolve_block_size(&problem.users, problem.block_size),
            threads,
            candidates: problem.candidates.clone(),
            facilities: problem.facilities.clone(),
            users: problem.users.clone(),
            alive: vec![true; problem.n_users()],
            f_count: sets.f_count.clone(),
            base: sets,
            inverted,
            overrides: BTreeMap::new(),
            counts,
            n_classes,
            dirty: false,
            stats: UpdateStats::default(),
        }
    }

    /// Applies one event, returning the affected slot id (the freshly
    /// allocated slot for inserts). Rejected events change nothing.
    pub fn apply(&mut self, event: UserUpdate) -> Result<u32, UpdateError> {
        match event {
            UserUpdate::Insert { positions } => self.insert(positions),
            UserUpdate::Delete { user } => self.delete(user),
            UserUpdate::Move { user, positions } => self.move_to(user, positions),
        }
    }

    fn insert(&mut self, positions: Vec<Point>) -> Result<u32, UpdateError> {
        let user = validated_user(positions)?;
        let (row, w) = self.verify_user(&user);
        assert!(
            self.users.len() < u32::MAX as usize,
            "user slot space exhausted"
        );
        // lint:allow(narrowing-cast): guarded by the slot-space assert above
        let o = self.users.len() as u32;
        self.stats.flipped += row.len() as u64;
        self.ensure_classes(w as usize);
        for &c in &row {
            self.counts[c as usize * self.n_classes + w as usize] += 1;
        }
        self.users.push(user);
        self.alive.push(true);
        self.f_count.push(w);
        self.overrides.insert(o, row);
        self.stats.events += 1;
        self.stats.inserts += 1;
        self.dirty = true;
        Ok(o)
    }

    fn delete(&mut self, o: u32) -> Result<u32, UpdateError> {
        self.check_alive(o)?;
        let old = self.current_row(o).to_vec();
        let w = self.f_count[o as usize] as usize;
        for &c in &old {
            self.counts[c as usize * self.n_classes + w] -= 1;
        }
        self.stats.flipped += old.len() as u64;
        self.alive[o as usize] = false;
        self.overrides.insert(o, Vec::new());
        self.stats.events += 1;
        self.stats.deletes += 1;
        self.dirty = true;
        Ok(o)
    }

    fn move_to(&mut self, o: u32, positions: Vec<Point>) -> Result<u32, UpdateError> {
        self.check_alive(o)?;
        let user = validated_user(positions)?;
        let (row, w_new) = self.verify_user(&user);
        let old = self.current_row(o).to_vec();
        let w_old = self.f_count[o as usize] as usize;
        for &c in &old {
            self.counts[c as usize * self.n_classes + w_old] -= 1;
        }
        self.ensure_classes(w_new as usize);
        for &c in &row {
            self.counts[c as usize * self.n_classes + w_new as usize] += 1;
        }
        self.stats.flipped += symmetric_difference(&old, &row);
        self.users[o as usize] = user;
        self.f_count[o as usize] = w_new;
        self.overrides.insert(o, row);
        self.stats.events += 1;
        self.stats.moves += 1;
        self.dirty = true;
        Ok(o)
    }

    /// Re-verifies one trajectory against every site, returning its sorted
    /// candidate row and `|F_o|`. Only flip-set survivors reach the
    /// kernel; see the module docs for the soundness argument.
    fn verify_user(&mut self, user: &MovingUser) -> (Vec<u32>, u32) {
        let r = user.len();
        let nir = min_max_radius(&self.pf, self.tau, r);
        let mut row = Vec::new();
        let mut w = 0u32;
        let Some(radius) = nir else {
            // Even r coincident positions cannot reach τ: every decision
            // is a non-influence, with zero evaluations.
            self.stats.sites_pruned += (self.candidates.len() + self.facilities.len()) as u64;
            return (row, w);
        };
        let slack = radius + 1e-6 * (1.0 + radius);
        let single = [user.clone()];
        let blocks = self.resolved.map(|bs| PositionBlocks::build(&single, bs));
        let mut scratch = EventScratch {
            bounds: BlockScratch::new(),
            evals: EvalCounter::new(),
            blocks: BlockCounters::new(),
        };
        let candidates = std::mem::take(&mut self.candidates);
        for (c, site) in candidates.iter().enumerate() {
            if self.site_influenced(site, user, r, slack, &blocks, &mut scratch) {
                // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
                row.push(c as u32);
            }
        }
        self.candidates = candidates;
        // The pipeline's irrelevant-user rule: a user outside every Ω_c
        // contributes to no gain, so its |F_o| is canonically zero and the
        // facility verifications are skipped — the from-scratch rebuild
        // produces the same representation.
        if row.is_empty() {
            self.stats.sites_pruned += self.facilities.len() as u64;
            self.stats.prob_evals += scratch.evals.get();
            return (row, 0);
        }
        let facilities = std::mem::take(&mut self.facilities);
        for site in &facilities {
            if self.site_influenced(site, user, r, slack, &blocks, &mut scratch) {
                w += 1;
            }
        }
        self.facilities = facilities;
        self.stats.prob_evals += scratch.evals.get();
        (row, w)
    }

    /// The flip-set bounds plus the kernel, for one (site, user) pair.
    fn site_influenced(
        &mut self,
        site: &Point,
        user: &MovingUser,
        r: usize,
        slack_radius: f64,
        blocks: &Option<PositionBlocks>,
        scratch: &mut EventScratch,
    ) -> bool {
        let d_min = user.mbr().min_distance(site);
        // Bound 1: beyond the slacked minimum-influence radius, no
        // arrangement of r positions reaches τ. Zero evaluations.
        if d_min > slack_radius {
            self.stats.sites_pruned += 1;
            return false;
        }
        // Bound 2: η in kernel arithmetic. Every true factor 1 − PF(dᵢ) is
        // ≥ this one (dᵢ ≥ d_min, PF non-increasing), and the left fold
        // mirrors the kernel's, so `bound > 1 − τ` implies the kernel's
        // final product also exceeds 1 − τ: it would reject.
        scratch.evals.add(1);
        let keep = 1.0 - self.pf.prob(d_min);
        let mut bound = 1.0f64;
        for _ in 0..r {
            bound *= keep;
        }
        if bound > 1.0 - self.tau {
            self.stats.sites_pruned += 1;
            return false;
        }
        self.stats.sites_checked += 1;
        match blocks {
            Some(b) if self.pf_exact => influences_blocked_exact_counted(
                &self.pf,
                site,
                b,
                0,
                self.tau,
                &mut scratch.bounds,
                &scratch.evals,
                &scratch.blocks,
            ),
            Some(b) => influences_blocked_counted(
                &self.pf,
                site,
                b,
                0,
                self.tau,
                &mut scratch.bounds,
                &scratch.evals,
                &scratch.blocks,
            ),
            None => influences_counted(&self.pf, site, user.positions(), self.tau, &scratch.evals),
        }
    }

    /// Folds the override log and the tombstones back into flat CSRs:
    /// live slots are renumbered densely in slot order, the forward CSR is
    /// rebuilt from the current rows (already sorted — slots are walked in
    /// ascending order), the inverted CSR is rebuilt across the engine's
    /// worker threads and the count matrix narrows back to the canonical
    /// class width. Returns `remap[old_slot] = new_id` (`u32::MAX` for
    /// tombstones), or `None` when nothing changed since the last
    /// compaction.
    pub fn compact(&mut self) -> Option<Vec<u32>> {
        if !self.dirty {
            return None;
        }
        let n_old = self.users.len();
        let mut remap = vec![u32::MAX; n_old];
        let mut users = Vec::with_capacity(n_old);
        let mut f_count = Vec::with_capacity(n_old);
        for (o, slot) in remap.iter_mut().enumerate() {
            if self.alive[o] {
                // lint:allow(narrowing-cast): live count <= slot count, which fits the u32 id space
                *slot = users.len() as u32;
                users.push(self.users[o].clone());
                f_count.push(self.f_count[o]);
            }
        }
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.candidates.len()];
        for (o, &new_id) in remap.iter().enumerate() {
            if !self.alive[o] {
                continue;
            }
            // lint:allow(narrowing-cast): o < n_old <= the u32 slot space
            for &c in self.current_row(o as u32) {
                rows[c as usize].push(new_id);
            }
        }
        self.base = InfluenceSets::new(rows, f_count);
        self.inverted = InvertedIndex::build(&self.base, self.threads);
        self.users = users;
        self.alive = vec![true; self.users.len()];
        self.f_count = self.base.f_count.clone();
        self.overrides.clear();
        let target = self.base.n_weight_classes();
        if target != self.n_classes {
            let n = self.candidates.len();
            let mut next = vec![0u32; n * target];
            for c in 0..n {
                let row = &self.counts[c * self.n_classes..(c + 1) * self.n_classes];
                debug_assert!(
                    row.iter().skip(target).all(|&x| x == 0),
                    "classes beyond the canonical width must be empty"
                );
                next[c * target..(c + 1) * target].copy_from_slice(&row[..target.min(row.len())]);
            }
            self.counts = next;
            self.n_classes = target;
        }
        debug_assert_eq!(
            self.counts,
            fresh_counts(&self.base, self.n_classes),
            "patched counts must equal a from-scratch recount"
        );
        self.stats.compactions += 1;
        self.dirty = false;
        Some(remap)
    }

    /// Greedy top-`k` over the live state: compacts if dirty (the only
    /// O(instance) step — never a re-verification), then runs the
    /// decremental selector seeded from the patched count matrix.
    /// Bit-identical to any from-scratch selector on the same state.
    ///
    /// # Panics
    /// Panics when `k` exceeds the candidate count.
    pub fn solve(&mut self, k: usize) -> (Solution, SelectionStats) {
        self.compact();
        greedy::select_decremental_seeded(
            &self.base,
            &self.inverted,
            self.counts.clone(),
            self.n_classes,
            k,
            &mc2ls_influence::Model::Cumulative,
        )
    }

    fn check_alive(&self, o: u32) -> Result<(), UpdateError> {
        if o as usize >= self.users.len() {
            return Err(UpdateError::UnknownUser(o));
        }
        if !self.alive[o as usize] {
            return Err(UpdateError::DeadUser(o));
        }
        Ok(())
    }

    /// Slot `o`'s current candidate row: the override when one exists,
    /// otherwise the compacted inverted row.
    fn current_row(&self, o: u32) -> &[u32] {
        match self.overrides.get(&o) {
            Some(row) => row,
            None => self.inverted.candidates_of(o),
        }
    }

    /// Grows the count matrix so class `w` exists.
    fn ensure_classes(&mut self, w: usize) {
        if w < self.n_classes {
            return;
        }
        let wider = w + 1;
        let n = self.candidates.len();
        let mut next = vec![0u32; n * wider];
        for c in 0..n {
            next[c * wider..c * wider + self.n_classes]
                .copy_from_slice(&self.counts[c * self.n_classes..(c + 1) * self.n_classes]);
        }
        self.counts = next;
        self.n_classes = wider;
    }

    /// The compacted influence CSR. Call [`UpdateEngine::compact`] first
    /// to fold pending events in.
    pub fn sets(&self) -> &InfluenceSets {
        &self.base
    }

    /// The compacted inverted CSR (stale for slots with pending events).
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Per-slot trajectories; after a compaction every slot is live.
    pub fn users(&self) -> &[MovingUser] {
        &self.users
    }

    /// Whether slot `o` exists and is live.
    pub fn is_alive(&self, o: u32) -> bool {
        (o as usize) < self.alive.len() && self.alive[o as usize]
    }

    /// Slot `o`'s current trajectory, when live.
    pub fn positions_of(&self, o: u32) -> Option<&[Point]> {
        self.is_alive(o).then(|| self.users[o as usize].positions())
    }

    /// Live (non-tombstoned) user count.
    pub fn n_live(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Allocated slot count, tombstones included.
    pub fn n_slots(&self) -> usize {
        self.users.len()
    }

    /// Whether events are pending since the last compaction.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Lifetime work counters.
    pub fn stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// The candidate sites (fixed for the engine's lifetime).
    pub fn candidates(&self) -> &[Point] {
        &self.candidates
    }
}

/// Validates an event's position list into a [`MovingUser`].
fn validated_user(positions: Vec<Point>) -> Result<MovingUser, UpdateError> {
    if positions.is_empty() {
        return Err(UpdateError::EmptyPositions);
    }
    if positions
        .iter()
        .any(|p| !p.x.is_finite() || !p.y.is_finite())
    {
        return Err(UpdateError::NonFinitePosition);
    }
    Ok(MovingUser::new(positions))
}

/// `|a Δ b|` for two sorted id rows.
fn symmetric_difference(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut out) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                out += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                out += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out + (a.len() - i) as u64 + (b.len() - j) as u64
}

/// From-scratch recount at a given class width (debug cross-check).
fn fresh_counts(sets: &InfluenceSets, n_classes: usize) -> Vec<u32> {
    let n = sets.n_candidates();
    let mut counts = vec![0u32; n * n_classes];
    for c in 0..n {
        for &o in sets.omega(c) {
            counts[c * n_classes + sets.f_count[o as usize] as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::influence_sets_threaded;
    use crate::{IqtConfig, Method};
    use mc2ls_influence::Sigmoid;

    fn lattice_problem() -> Problem<Sigmoid> {
        // 4 users on a line, 3 candidates, 2 facilities; τ low enough that
        // nearby sites influence.
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]),
            MovingUser::new(vec![Point::new(5.0, 0.0)]),
            MovingUser::new(vec![Point::new(10.0, 0.0), Point::new(10.5, 0.5)]),
            MovingUser::new(vec![Point::new(50.0, 50.0)]),
        ];
        let candidates = vec![
            Point::new(0.2, 0.1),
            Point::new(5.1, 0.1),
            Point::new(10.2, 0.2),
        ];
        let facilities = vec![Point::new(0.4, -0.1), Point::new(9.9, 0.1)];
        Problem::new(users, facilities, candidates, 2, 0.6, Sigmoid { rho: 1.0 })
    }

    fn rebuilt_sets(engine: &UpdateEngine<Sigmoid>, problem: &Problem<Sigmoid>) -> InfluenceSets {
        let fresh = Problem::new(
            engine.users().to_vec(),
            problem.facilities.clone(),
            problem.candidates.clone(),
            problem.k,
            problem.tau,
            problem.pf,
        )
        .with_block_size(problem.block_size)
        .with_pf_exact(problem.pf_exact);
        influence_sets_threaded(&fresh, Method::Iqt(IqtConfig::default()), 2).0
    }

    #[test]
    fn insert_then_compact_matches_rebuild() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 2);
        let o = engine
            .apply(UserUpdate::Insert {
                positions: vec![Point::new(5.2, 0.0), Point::new(4.9, 0.1)],
            })
            .unwrap();
        assert_eq!(o, 4);
        assert!(engine.is_dirty());
        let remap = engine.compact().unwrap();
        assert_eq!(remap, vec![0, 1, 2, 3, 4]);
        assert_eq!(engine.sets(), &rebuilt_sets(&engine, &problem));
        assert!(engine.compact().is_none(), "second compaction is a no-op");
    }

    #[test]
    fn delete_costs_zero_kernel_checks() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 1);
        let before = engine.stats().clone();
        engine.apply(UserUpdate::Delete { user: 1 }).unwrap();
        let after = engine.stats();
        assert_eq!(after.sites_checked, before.sites_checked);
        assert_eq!(after.prob_evals, before.prob_evals);
        assert_eq!(after.deletes, 1);
        engine.compact();
        assert_eq!(engine.sets(), &rebuilt_sets(&engine, &problem));
        assert_eq!(engine.n_live(), 3);
    }

    #[test]
    fn move_matches_rebuild_and_remap_skips_tombstones() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 2);
        engine.apply(UserUpdate::Delete { user: 0 }).unwrap();
        engine
            .apply(UserUpdate::Move {
                user: 2,
                positions: vec![Point::new(0.1, 0.0)],
            })
            .unwrap();
        let remap = engine.compact().unwrap();
        assert_eq!(remap, vec![u32::MAX, 0, 1, 2]);
        assert_eq!(engine.sets(), &rebuilt_sets(&engine, &problem));
    }

    #[test]
    fn far_sites_are_pruned_without_evals() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 1);
        // A user far away from every site: the whole row prunes on the
        // radius bound, so the only evaluations are the η bounds (at most
        // one per site) — and for a truly remote MBR, none at all.
        engine
            .apply(UserUpdate::Insert {
                positions: vec![Point::new(1e4, 1e4)],
            })
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.sites_checked, 0);
        assert_eq!(stats.prob_evals, 0);
        assert_eq!(stats.sites_pruned, 5);
    }

    #[test]
    fn solve_after_events_matches_from_scratch_selection() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 2);
        engine
            .apply(UserUpdate::Move {
                user: 3,
                positions: vec![Point::new(0.3, 0.0)],
            })
            .unwrap();
        let (sol, _) = engine.solve(2);
        let rebuilt = rebuilt_sets(&engine, &problem);
        let want = greedy::select_decremental(&rebuilt, 2);
        assert_eq!(sol.selected, want.selected);
        assert_eq!(sol.cinf.to_bits(), want.cinf.to_bits());
    }

    #[test]
    fn rejected_events_leave_the_engine_untouched() {
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 1);
        assert_eq!(
            engine.apply(UserUpdate::Delete { user: 99 }),
            Err(UpdateError::UnknownUser(99))
        );
        engine.apply(UserUpdate::Delete { user: 1 }).unwrap();
        assert_eq!(
            engine.apply(UserUpdate::Delete { user: 1 }),
            Err(UpdateError::DeadUser(1))
        );
        assert_eq!(
            engine.apply(UserUpdate::Insert { positions: vec![] }),
            Err(UpdateError::EmptyPositions)
        );
        assert_eq!(
            engine.apply(UserUpdate::Move {
                user: 0,
                positions: vec![Point::new(f64::NAN, 0.0)],
            }),
            Err(UpdateError::NonFinitePosition)
        );
        assert_eq!(engine.stats().events, 1);
        assert!(!engine.is_dirty() || engine.stats().events == 1);
    }

    #[test]
    fn weight_class_growth_and_narrowing() {
        // Moving a user on top of both facilities grows |F_o| beyond the
        // initial class width; deleting it narrows back at compaction.
        let problem = lattice_problem();
        let mut engine = UpdateEngine::new(&problem, 1);
        engine
            .apply(UserUpdate::Move {
                user: 3,
                positions: vec![Point::new(0.4, -0.1), Point::new(9.9, 0.1)],
            })
            .unwrap();
        engine.compact();
        assert_eq!(engine.sets(), &rebuilt_sets(&engine, &problem));
        let (sol, _) = engine.solve(2);
        let want = greedy::select_decremental(engine.sets(), 2);
        assert_eq!(sol.selected, want.selected);
        assert_eq!(sol.cinf.to_bits(), want.cinf.to_bits());
    }
}
