//! Adapted k-CIFP (paper Algorithm 1): the state-of-the-art comparator,
//! extended from the k-CIFP study [15] with the competition factor.
//!
//! Candidates and facilities are indexed in two R-trees (`RT_C`, `RT_F`).
//! For every user the IA and NIB regions derived from `mMR(τ, r)` classify
//! abstract facilities: inside IA ⇒ influences for sure; outside NIB ⇒
//! cannot influence; in between ⇒ verify with the cumulative probability.
//!
//! We issue a single NIB-window range query per (user, tree) and classify
//! each hit exactly — IA first (`max_dist ≤ mMR`), then NIB membership
//! (`min_dist ≤ mMR`) — which is semantically identical to Algorithm 1's
//! two `RangeQuery` calls but touches the R-tree once.

use crate::pruning::{ia_contains, nib_contains, nib_query_rect, MmrTable};
use crate::verify::Verifier;
use crate::{InfluenceSets, PhaseTimes, Problem, PruneStats};
use mc2ls_index::RTree;
use mc2ls_influence::{influences_counted, EvalCounter, ProbabilityFunction};
use std::time::Instant;

/// Computes influence relationships with IA/NIB pruning over R-trees.
/// Undecided pairs go through the configured verification kernel (blocked
/// when `problem.block_size > 0`).
pub fn influence_sets<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    let mut stats = PruneStats::default();
    let mut times = PhaseTimes::default();

    // Lines 1–2: R-trees of C and F (and the blocked substrate).
    let t = Instant::now();
    let verifier = Verifier::build(problem);
    let mut scratch = verifier.scratch();
    let rt_c = RTree::bulk_load(
        problem
            .candidates
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, *p))
            .collect(),
    );
    let rt_f = RTree::bulk_load(
        problem
            .facilities
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, *p))
            .collect(),
    );
    let mmr = MmrTable::build(&problem.pf, problem.tau, problem.r_max());
    times.indexing = t.elapsed();

    let n_users = problem.n_users();
    let n_cands = problem.n_candidates();
    let n_facs = problem.n_facilities();
    stats.pairs_total = ((n_cands + n_facs) * n_users) as u64;

    let mut omega_c: Vec<Vec<u32>> = vec![Vec::new(); n_cands];
    let mut f_count = vec![0u32; n_users];

    // Lines 3–9: candidate classification per user.
    let t = Instant::now();
    let mut pruning_time = std::time::Duration::ZERO;
    let mut influenced_by_candidate = vec![false; n_users];
    for (o, user) in problem.users.iter().enumerate() {
        let Some(radius) = mmr.get(user.len()) else {
            // This user can never be influenced: every pair is pruned.
            stats.nib_decided += n_cands as u64;
            continue;
        };
        let t_prune = Instant::now();
        let window = nib_query_rect(user.mbr(), radius);
        let mut in_window: Vec<(u32, mc2ls_geo::Point)> = Vec::new();
        rt_c.for_each_in_rect(&window, |id, p| in_window.push((id, p)));
        pruning_time += t_prune.elapsed();

        stats.nib_decided += (n_cands - in_window.len()) as u64;
        for (c, p) in in_window {
            if ia_contains(user.mbr(), &p, radius) {
                stats.ia_decided += 1;
                omega_c[c as usize].push(o as u32);
                influenced_by_candidate[o] = true;
            } else if !nib_contains(user.mbr(), &p, radius) {
                stats.nib_decided += 1;
            } else {
                stats.verified += 1;
                if verifier.influences(&p, o as u32, &mut scratch) {
                    omega_c[c as usize].push(o as u32);
                    influenced_by_candidate[o] = true;
                }
            }
        }
    }

    // Lines 10–15: facility classification, restricted to users influenced
    // by at least one candidate (Ω′) — the others never contribute weight.
    for (o, user) in problem.users.iter().enumerate() {
        if !influenced_by_candidate[o] {
            stats.irrelevant += n_facs as u64;
            continue;
        }
        let Some(radius) = mmr.get(user.len()) else {
            stats.nib_decided += n_facs as u64;
            continue;
        };
        let t_prune = Instant::now();
        let window = nib_query_rect(user.mbr(), radius);
        let mut in_window: Vec<(u32, mc2ls_geo::Point)> = Vec::new();
        rt_f.for_each_in_rect(&window, |id, p| in_window.push((id, p)));
        pruning_time += t_prune.elapsed();

        stats.nib_decided += (n_facs - in_window.len()) as u64;
        for (_f, p) in in_window {
            if ia_contains(user.mbr(), &p, radius) {
                stats.ia_decided += 1;
                f_count[o] += 1;
            } else if !nib_contains(user.mbr(), &p, radius) {
                stats.nib_decided += 1;
            } else {
                stats.verified += 1;
                if verifier.influences(&p, o as u32, &mut scratch) {
                    f_count[o] += 1;
                }
            }
        }
    }
    let phase = t.elapsed();
    times.pruning = pruning_time;
    times.verification = phase.saturating_sub(pruning_time);

    // omega_c lists were filled in increasing user order already.
    scratch.counts().add_to(&mut stats);
    (InfluenceSets::new(omega_c, f_count), stats, times)
}

/// The *literal* Algorithm 1: two `RangeQuery` calls per user per tree —
/// first the IA window (certain influence), then the NIB window with the
/// IA hits subtracted (verification candidates) — exactly as the paper's
/// pseudo-code issues them.
///
/// [`influence_sets`] merges the two windows into one query per user,
/// which is semantically identical but touches each R-tree once; this
/// faithful variant exists to measure what that merge is worth (see the
/// `ablation_kcifp` bench) and as a second witness in the agreement tests.
/// It deliberately stays on the plain per-position kernel: it replicates
/// the paper's protocol literally, so the blocked substrate is not wired
/// in here.
pub fn influence_sets_faithful<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    use crate::pruning::ia_inner_circle;

    let mut stats = PruneStats::default();
    let mut times = PhaseTimes::default();
    let counter = EvalCounter::new();

    let t = Instant::now();
    let rt_c = RTree::bulk_load(
        problem
            .candidates
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, *p))
            .collect(),
    );
    let rt_f = RTree::bulk_load(
        problem
            .facilities
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, *p))
            .collect(),
    );
    let mmr = MmrTable::build(&problem.pf, problem.tau, problem.r_max());
    times.indexing = t.elapsed();

    let n_users = problem.n_users();
    let n_cands = problem.n_candidates();
    let n_facs = problem.n_facilities();
    stats.pairs_total = ((n_cands + n_facs) * n_users) as u64;

    // Classifies one tree's sites for one user with the two-query protocol;
    // returns the influencing site ids.
    let classify = |tree: &RTree,
                    n_sites: usize,
                    user: &mc2ls_influence::MovingUser,
                    radius: f64,
                    stats_ia: &mut u64,
                    stats_nib: &mut u64,
                    stats_verified: &mut u64|
     -> Vec<u32> {
        let mut hits: Vec<u32> = Vec::new();
        // Query 1: the IA window (lines 4-6).
        let mut ia_ids: Vec<u32> = Vec::new();
        if let Some(circle) = ia_inner_circle(user.mbr(), radius) {
            tree.for_each_in_rect(&circle.bounding_rect(), |id, p| {
                if ia_contains(user.mbr(), &p, radius) {
                    ia_ids.push(id);
                }
            });
        }
        *stats_ia += ia_ids.len() as u64;
        hits.extend_from_slice(&ia_ids);
        ia_ids.sort_unstable();
        // Query 2: the NIB window minus the IA set (lines 7-9).
        let window = nib_query_rect(user.mbr(), radius);
        let mut seen_in_window = 0u64;
        tree.for_each_in_rect(&window, |id, p| {
            seen_in_window += 1;
            if ia_ids.binary_search(&id).is_ok() {
                return;
            }
            if !nib_contains(user.mbr(), &p, radius) {
                *stats_nib += 1;
                return;
            }
            *stats_verified += 1;
            if influences_counted(&problem.pf, &p, user.positions(), problem.tau, &counter) {
                hits.push(id);
            }
        });
        *stats_nib += n_sites as u64 - seen_in_window;
        hits
    };

    let mut omega_c: Vec<Vec<u32>> = vec![Vec::new(); n_cands];
    let mut f_count = vec![0u32; n_users];
    let mut influenced_by_candidate = vec![false; n_users];

    let t = Instant::now();
    for (o, user) in problem.users.iter().enumerate() {
        let Some(radius) = mmr.get(user.len()) else {
            stats.nib_decided += n_cands as u64;
            continue;
        };
        let (mut ia, mut nib, mut verified) = (0, 0, 0);
        for c in classify(
            &rt_c,
            n_cands,
            user,
            radius,
            &mut ia,
            &mut nib,
            &mut verified,
        ) {
            omega_c[c as usize].push(o as u32);
            influenced_by_candidate[o] = true;
        }
        stats.ia_decided += ia;
        stats.nib_decided += nib;
        stats.verified += verified;
    }
    for (o, user) in problem.users.iter().enumerate() {
        if !influenced_by_candidate[o] {
            stats.irrelevant += n_facs as u64;
            continue;
        }
        let Some(radius) = mmr.get(user.len()) else {
            stats.nib_decided += n_facs as u64;
            continue;
        };
        let (mut ia, mut nib, mut verified) = (0, 0, 0);
        f_count[o] += classify(
            &rt_f,
            n_facs,
            user,
            radius,
            &mut ia,
            &mut nib,
            &mut verified,
        )
        .len() as u32;
        stats.ia_decided += ia;
        stats.nib_decided += nib;
        stats.verified += verified;
    }
    times.verification = t.elapsed();
    stats.prob_evals = counter.get();
    (InfluenceSets::new(omega_c, f_count), stats, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn random_problem(seed: u64, n_users: usize, n_f: usize, n_c: usize) -> Problem {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let users: Vec<MovingUser> = (0..n_users)
            .map(|_| {
                let cx = next() * 20.0;
                let cy = next() * 20.0;
                let r = 1 + (next() * 8.0) as usize;
                MovingUser::new(
                    (0..r)
                        .map(|_| Point::new(cx + next() * 2.0, cy + next() * 2.0))
                        .collect(),
                )
            })
            .collect();
        let facilities = (0..n_f)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        let candidates = (0..n_c)
            .map(|_| Point::new(next() * 20.0, next() * 20.0))
            .collect();
        Problem::new(
            users,
            facilities,
            candidates,
            2.min(n_c),
            0.6,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn matches_baseline_on_random_instances() {
        for seed in 1..15u64 {
            let p = random_problem(seed, 40, 8, 10);
            let (a, _, _) = baseline::influence_sets(&p);
            let (b, _, _) = influence_sets(&p);
            assert_eq!(a.csr(), b.csr(), "omega_c diverged, seed={seed}");
            // f_count may differ on users influenced by no candidate (k-CIFP
            // skips them as an optimisation); weights only matter for
            // influenced users.
            for c in 0..p.n_candidates() {
                for &o in a.omega(c) {
                    assert_eq!(
                        a.f_count[o as usize], b.f_count[o as usize],
                        "f_count diverged for influenced user {o}, seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn faithful_two_query_variant_matches_combined() {
        for seed in 1..10u64 {
            let p = random_problem(seed, 50, 10, 12);
            let (a, a_stats, _) = influence_sets(&p);
            let (b, b_stats, _) = influence_sets_faithful(&p);
            assert_eq!(a.csr(), b.csr(), "seed={seed}");
            for list in a.iter_omegas() {
                for &o in list {
                    assert_eq!(a.f_count[o as usize], b.f_count[o as usize], "seed={seed}");
                }
            }
            // Both ledgers balance.
            for s in [a_stats, b_stats] {
                assert_eq!(
                    s.is_decided
                        + s.nir_decided
                        + s.ia_decided
                        + s.nib_decided
                        + s.irrelevant
                        + s.verified,
                    s.pairs_total,
                    "seed={seed}"
                );
            }
        }
    }

    #[test]
    fn prunes_more_than_it_verifies_on_sparse_data() {
        let p = random_problem(7, 100, 20, 20);
        let (_, stats, _) = influence_sets(&p);
        assert!(stats.verified < stats.pairs_total);
        assert!(stats.nib_decided > 0);
        assert_eq!(
            stats.verified
                + stats.nib_decided
                + stats.ia_decided
                + stats.is_decided
                + stats.nir_decided
                + stats.irrelevant,
            stats.pairs_total
        );
    }
}
