//! The MC²LS solution algorithms and the common driver.

pub mod baseline;
pub mod budgeted;
pub mod exact;
pub mod iqt;
pub mod kcifp;
pub mod topk;

use crate::{greedy, InfluenceSets, PhaseTimes, Problem, PruneStats, RunReport, SelectionStats};
use mc2ls_influence::{CompetitionModel, Model, ProbabilityFunction};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the IQuad-tree solution (Algorithm 2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IqtConfig {
    /// Leaf-square diagonal `d̂` in km (paper default: 2 km).
    pub leaf_diagonal: f64,
    /// Layer the classical NIB rule on top of IS/NIR (the paper's `IQT`).
    pub use_nib: bool,
    /// Additionally layer the IA rule (the paper's `IQT-PINO`).
    pub use_ia: bool,
}

impl IqtConfig {
    /// `IQT-C`: IS + NIR only.
    pub fn iqt_c(leaf_diagonal: f64) -> Self {
        IqtConfig {
            leaf_diagonal,
            use_nib: false,
            use_ia: false,
        }
    }

    /// `IQT`: IS + NIR + NIB (the paper's recommended configuration).
    pub fn iqt(leaf_diagonal: f64) -> Self {
        IqtConfig {
            leaf_diagonal,
            use_nib: true,
            use_ia: false,
        }
    }

    /// `IQT-PINO`: IS + NIR + NIB + IA (shown by Table I to be unprofitable).
    pub fn iqt_pino(leaf_diagonal: f64) -> Self {
        IqtConfig {
            leaf_diagonal,
            use_nib: true,
            use_ia: true,
        }
    }
}

impl Default for IqtConfig {
    fn default() -> Self {
        IqtConfig::iqt(2.0)
    }
}

/// Which algorithm computes the influence relationships.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Method {
    /// §IV-A: exhaustive influence computation (no pruning).
    Baseline,
    /// Algorithm 1: R-trees over C/F with IA + NIB pruning.
    KCifp,
    /// Algorithm 2: IQuad-tree with IS + NIR (+ optional NIB/IA).
    Iqt(IqtConfig),
}

impl Method {
    /// Human-readable name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Baseline => "Baseline",
            Method::KCifp => "k-CIFP",
            Method::Iqt(c) => match (c.use_nib, c.use_ia) {
                (false, false) => "IQT-C",
                (true, false) => "IQT",
                (true, true) => "IQT-PINO",
                (false, true) => "IQT+IA",
            },
        }
    }
}

/// How the `k` candidates are selected from the influence sets. Every
/// selector returns byte-identical [`crate::Solution`]s (canonical
/// weight-class gains, smallest-id tie-break); they differ only in how much
/// work they spend getting there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// The paper's greedy: re-evaluate every candidate per round.
    Greedy,
    /// CELF lazy greedy (identical result, fewer evaluations).
    LazyGreedy,
    /// Decremental gain maintenance over the inverted user → candidate CSR
    /// (identical result; update work bounded by one inverted-CSR pass).
    Decremental,
    /// Picks [`Selector::Decremental`] or [`Selector::LazyGreedy`] from the
    /// instance shape — see [`resolve_selector`].
    Auto,
}

/// Resolves [`Selector::Auto`] against the instance: decremental
/// maintenance pays off when one pass over the CSR (`Σ|Ω_c|`, its total
/// update bound) costs no more than the `k·|C|` candidate re-evaluations a
/// scanning selector risks, i.e. when the sets are sparse relative to the
/// budget; otherwise CELF's pruning on the forward CSR wins. Non-`Auto`
/// selectors resolve to themselves.
pub fn resolve_selector(selector: Selector, sets: &InfluenceSets, k: usize) -> Selector {
    match selector {
        Selector::Auto => {
            if sets.total_influences() <= k * sets.n_candidates() {
                Selector::Decremental
            } else {
                Selector::LazyGreedy
            }
        }
        s => s,
    }
}

/// Runs the (resolved) selector, returning the solution plus its
/// [`SelectionStats`] work counters. Public so callers holding
/// pre-computed (or deserialized) [`InfluenceSets`] — notably the
/// `mc2ls-serve` query engine — can run the selection phase alone without
/// re-deriving the influence relationships.
pub fn run_selector(
    selector: Selector,
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
) -> (crate::Solution, SelectionStats) {
    run_selector_model(selector, sets, k, threads, &Model::Cumulative)
}

/// [`run_selector`] under an arbitrary competition model, with the
/// **submodularity routing rule**: a model declaring
/// [`is_submodular`](CompetitionModel::is_submodular) runs the requested
/// greedy-family selector (all byte-identical); a non-submodular model is
/// routed to the exact branch-and-bound oracle
/// ([`exact::solve_exact_model`]) regardless of `selector`, because
/// greedy's marginal-gain argument certifies nothing there. The exact
/// route is capped at [`exact::MAX_EXACT_CANDIDATES`] candidates.
///
/// # Panics
/// Panics when `k` exceeds the candidate count, `threads == 0`, or a
/// non-submodular model is run on more than
/// [`exact::MAX_EXACT_CANDIDATES`] candidates.
pub fn run_selector_model<M: CompetitionModel + Sync>(
    selector: Selector,
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
    model: &M,
) -> (crate::Solution, SelectionStats) {
    if !model.is_submodular() {
        let solution = exact::solve_exact_model(sets, k, model);
        let stats = SelectionStats {
            gain_evals: solution.selected.len() as u64,
            covered_users: sets.covered_by(&solution.selected).count_ones() as u64,
            ..SelectionStats::default()
        };
        return (solution, stats);
    }
    match resolve_selector(selector, sets, k) {
        Selector::Greedy => greedy::select_counted_model(sets, k, model),
        Selector::LazyGreedy => greedy::select_lazy_counted_model(sets, k, threads, model),
        Selector::Decremental => greedy::select_decremental_counted_model(sets, k, threads, model),
        // lint:allow(panic-propagation): resolve_selector maps Auto to a concrete selector
        Selector::Auto => unreachable!("resolve_selector never returns Auto"),
    }
}

/// Computes the influence relationships with `method`, then selects `k`
/// candidates with the standard greedy. This is the main entry point.
pub fn solve<PF: ProbabilityFunction>(problem: &Problem<PF>, method: Method) -> RunReport {
    solve_with(problem, method, Selector::Greedy)
}

/// [`solve`] with an explicit selection strategy.
pub fn solve_with<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    method: Method,
    selector: Selector,
) -> RunReport {
    let (sets, stats, mut times) = influence_sets(problem, method);
    let t = Instant::now();
    let (solution, selection) = run_selector_model(selector, &sets, problem.k, 1, &problem.model);
    times.selection = t.elapsed();
    RunReport {
        solution,
        stats,
        selection,
        times,
    }
}

/// Runs only the influence-relationship phases of `method`, returning the
/// resulting sets plus pruning counters and phase timings. Exposed so the
/// benchmarks can measure phases separately and so the exact solver can
/// reuse any method's sets.
pub fn influence_sets<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    method: Method,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    match method {
        Method::Baseline => baseline::influence_sets(problem),
        Method::KCifp => kcifp::influence_sets(problem),
        Method::Iqt(config) => iqt::influence_sets(problem, &config),
    }
}

/// [`solve_with`] with an explicit worker-thread count for the influence
/// phases. `threads == 1` is exactly the serial path; any thread count
/// produces bit-identical results (see `tests/parallel_equivalence.rs`),
/// so the selected sites and `cinf(G)` never depend on `threads`.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn solve_threaded<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    method: Method,
    selector: Selector,
    threads: usize,
) -> RunReport {
    let (sets, stats, mut times) = influence_sets_threaded(problem, method, threads);
    let t = Instant::now();
    let (solution, selection) =
        run_selector_model(selector, &sets, problem.k, threads, &problem.model);
    times.selection = t.elapsed();
    RunReport {
        solution,
        stats,
        selection,
        times,
    }
}

/// [`influence_sets`] across `threads` worker threads.
///
/// * [`Method::Iqt`] runs the chunked IQuad-tree pipeline
///   ([`iqt::influence_sets_parallel`]): traversal, NIB/IA refinement and
///   exact verification all fan out; sets **and** `PruneStats` are
///   bit-identical to serial.
/// * [`Method::Baseline`] runs the chunked exhaustive scan with per-worker
///   evaluation counters; its whole cost is verification, so `PhaseTimes`
///   reports the wall-clock of the scan there.
/// * [`Method::KCifp`] stays serial (its R-tree walk shares mutable
///   per-candidate state); `threads` is ignored.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn influence_sets_threaded<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    method: Method,
    threads: usize,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    assert!(threads >= 1, "need at least one worker thread");
    match method {
        Method::Baseline => {
            if threads == 1 {
                return baseline::influence_sets(problem);
            }
            let t0 = Instant::now();
            let (sets, counts) = crate::parallel::baseline_influence_sets_counted(problem, threads);
            let pairs =
                ((problem.n_candidates() + problem.n_facilities()) * problem.n_users()) as u64;
            let mut stats = PruneStats {
                pairs_total: pairs,
                verified: pairs,
                ..PruneStats::default()
            };
            counts.add_to(&mut stats);
            let times = PhaseTimes {
                verification: t0.elapsed(),
                ..PhaseTimes::default()
            };
            (sets, stats, times)
        }
        Method::KCifp => kcifp::influence_sets(problem),
        Method::Iqt(config) => iqt::influence_sets_parallel(problem, &config, threads),
    }
}
