//! Budget-constrained MC²LS.
//!
//! The paper's introduction motivates `k` as a budget proxy ("budget is
//! commonly the primary factor of k"). This module drops the proxy: every
//! candidate has an **opening cost** and the constraint is a total budget
//! `B` instead of a cardinality. The objective stays the submodular
//! `cinf(G)`; the solver is the classic cost-benefit greedy made safe by
//! taking the better of (a) the benefit-per-cost greedy sweep and (b) the
//! best single affordable candidate — the combination carries the
//! `(1 − 1/√e) ≈ 0.39` guarantee for budgeted submodular maximisation
//! (Khuller–Moss–Naor / Leskovec et al.).

use crate::{greedy, InfluenceSets, Solution};

/// Exhaustive optimum over affordable subsets — exponential; test oracle
/// only.
pub fn solve_budgeted_exact(sets: &InfluenceSets, costs: &[f64], budget: f64) -> Solution {
    let n = sets.n_candidates();
    assert_eq!(costs.len(), n, "one cost per candidate");
    assert!(n <= 20, "exact budgeted solver capped at 20 candidates");
    let mut best_set: Vec<u32> = Vec::new();
    let mut best_value = 0.0;
    for mask in 0u32..(1 << n) {
        let cost: f64 = (0..n)
            .filter(|&c| mask & (1 << c) != 0)
            .map(|c| costs[c])
            .sum();
        if cost > budget + 1e-12 {
            continue;
        }
        let set: Vec<u32> = (0..n as u32).filter(|&c| mask & (1 << c) != 0).collect();
        let value = sets.cinf_set(&set);
        if value > best_value + 1e-15 {
            best_value = value;
            best_set = set;
        }
    }
    solution_for(sets, best_set)
}

/// Budgeted greedy: the better of the benefit-per-cost sweep and the best
/// single affordable candidate.
///
/// # Panics
/// Panics on a cost-vector length mismatch, non-positive costs, or a
/// negative budget.
pub fn solve_budgeted(sets: &InfluenceSets, costs: &[f64], budget: f64) -> Solution {
    let n = sets.n_candidates();
    assert_eq!(costs.len(), n, "one cost per candidate");
    assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
    assert!(budget >= 0.0, "budget must be non-negative");

    // (a) benefit-per-cost greedy sweep.
    let mut covered = vec![false; sets.n_users()];
    let mut taken = vec![false; n];
    let mut remaining = budget;
    let mut sweep: Vec<u32> = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (c, &cost) in costs.iter().enumerate() {
            if taken[c] || cost > remaining + 1e-12 {
                continue;
            }
            let gain: f64 = sets
                .omega(c)
                .iter()
                .filter(|&&o| !covered[o as usize])
                .map(|&o| sets.weight(o))
                .sum();
            let ratio = gain / cost;
            match best {
                Some((_, r)) if ratio <= r => {}
                _ => best = Some((c, ratio)),
            }
        }
        let Some((c, ratio)) = best else { break };
        if ratio <= 0.0 {
            break; // nothing affordable adds value
        }
        taken[c] = true;
        remaining -= costs[c];
        sweep.push(c as u32);
        for &o in sets.omega(c) {
            covered[o as usize] = true;
        }
    }

    // (b) best single affordable candidate. Each `cinf_candidate` walks the
    // candidate's whole Ω_c; computing it once per candidate instead of
    // inside the comparator (O(n log n) re-evaluations) matters when the
    // sets are dense.
    let singleton: Vec<f64> = (0..n).map(|c| sets.cinf_candidate(c)).collect();
    let single: Option<u32> = (0..n)
        .filter(|&c| costs[c] <= budget + 1e-12)
        .max_by(|&a, &b| {
            singleton[a].total_cmp(&singleton[b]).then(b.cmp(&a)) // smaller id on ties
        })
        .map(|c| c as u32);

    let sweep_value = sets.cinf_set(&sweep);
    let single_value = single.map_or(0.0, |c| singleton[c as usize]);
    if single_value > sweep_value + 1e-15 {
        // lint:allow(panic-path): single_value > 0 is only reachable when the singleton argmax exists
        solution_for(sets, vec![single.expect("value > 0 implies a candidate")])
    } else {
        solution_for(sets, sweep)
    }
}

fn solution_for(sets: &InfluenceSets, mut selected: Vec<u32>) -> Solution {
    selected.sort_unstable();
    let cinf = sets.cinf_set(&selected);
    let mut gains = Vec::with_capacity(selected.len());
    let mut prev = 0.0;
    for i in 0..selected.len() {
        let v = sets.cinf_set(&selected[..=i]);
        gains.push(v - prev);
        prev = v;
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf,
    }
}

/// Convenience: uniform costs make the budgeted solver equivalent to the
/// cardinality greedy with `k = ⌊B⌋`.
pub fn solve_unit_cost(sets: &InfluenceSets, k: usize) -> Solution {
    greedy::select(sets, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> InfluenceSets {
        // 6 users, 4 candidates with varying coverage; no competitors.
        InfluenceSets::new(
            vec![
                vec![0, 1, 2],    // c0: big
                vec![3, 4],       // c1
                vec![5],          // c2
                vec![0, 1, 2, 3], // c3: biggest
            ],
            vec![0; 6],
        )
    }

    #[test]
    fn respects_the_budget() {
        let s = sets();
        let costs = [2.0, 1.5, 1.0, 3.0];
        for budget in [0.0, 1.0, 2.5, 4.0, 10.0] {
            let sol = solve_budgeted(&s, &costs, budget);
            let spent: f64 = sol.selected.iter().map(|&c| costs[c as usize]).sum();
            assert!(spent <= budget + 1e-9, "budget {budget}: spent {spent}");
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let sol = solve_budgeted(&sets(), &[1.0, 1.0, 1.0, 1.0], 0.0);
        assert!(sol.selected.is_empty());
        assert_eq!(sol.cinf, 0.0);
    }

    #[test]
    fn single_expensive_candidate_beats_cheap_sweep() {
        // c3 covers 4 users at cost 3; the ratio greedy would spend the
        // budget on cheap small candidates first — the single-candidate
        // fallback must rescue the solution.
        let s = sets();
        let costs = [1.0, 1.0, 1.0, 3.0];
        let sol = solve_budgeted(&s, &costs, 3.0);
        assert!(sol.cinf >= 4.0 - 1e-9, "got {}", sol.cinf);
    }

    #[test]
    fn meets_budgeted_approximation_bound() {
        // (1 − 1/√e) ≈ 0.3935 against the exact optimum, over random
        // instances.
        let mut seed = 99u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let bound = 1.0 - (-0.5f64).exp();
        for _case in 0..25 {
            let n_users = 4 + (next() % 20) as usize;
            let n_cands = 2 + (next() % 8) as usize;
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 3) as u32).collect();
            let s = InfluenceSets::new(omega_c, f_count);
            let costs: Vec<f64> = (0..n_cands).map(|_| 1.0 + (next() % 5) as f64).collect();
            let budget = 1.0 + (next() % 8) as f64;
            let greedy = solve_budgeted(&s, &costs, budget);
            let opt = solve_budgeted_exact(&s, &costs, budget);
            assert!(
                greedy.cinf >= bound * opt.cinf - 1e-9,
                "bound violated: {} vs opt {}",
                greedy.cinf,
                opt.cinf
            );
        }
    }

    #[test]
    fn unit_costs_match_cardinality_greedy() {
        let s = sets();
        let a = solve_budgeted(&s, &[1.0; 4], 2.0);
        let b = solve_unit_cost(&s, 2);
        // Same value (sets may differ on ties, value must not).
        assert!((a.cinf - b.cinf).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn rejects_free_candidates() {
        solve_budgeted(&sets(), &[0.0, 1.0, 1.0, 1.0], 2.0);
    }
}
