//! The single-facility top-k baseline — the method the paper's Fig. 1(d)
//! warns about.
//!
//! Single-facility competitive LS studies ([17], [18] in the paper) rank
//! candidates by their *individual* competitive influence `cinf(c)` and
//! return the top k. Because the ranking ignores influence overlap between
//! the chosen sites, the union can capture far less than the greedy's: in
//! the paper's example, `{c₁, c₄}` both influence the same users and lose
//! to the overlap-aware `{c₁, c₃}`. This module implements the baseline so
//! the harness can measure that quality gap.

use crate::{InfluenceSets, Solution};

/// Ranks candidates by individual `cinf(c)` (ties toward the smaller id)
/// and returns the top `k` — overlap-blind by construction. The reported
/// `cinf` is the honest set value (overlap counted once), so the quality
/// loss is directly visible against [`crate::greedy::select`].
pub fn select_top_k_single(sets: &InfluenceSets, k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    let mut ranked: Vec<(usize, f64)> = (0..n).map(|c| (c, sets.cinf_candidate(c))).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let selected: Vec<u32> = ranked[..k].iter().map(|&(c, _)| c as u32).collect();

    let cinf = sets.cinf_set(&selected);
    let mut gains = Vec::with_capacity(k);
    let mut prev = 0.0;
    for i in 0..selected.len() {
        let v = sets.cinf_set(&selected[..=i]);
        gains.push(v - prev);
        prev = v;
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;

    /// Fig. 1(d)'s structure: two "strong" candidates covering the same
    /// three users, plus two weaker candidates covering fresh users.
    fn overlap_trap() -> InfluenceSets {
        InfluenceSets::new(
            vec![
                vec![0, 1, 4], // c0: strong
                vec![0, 1, 4], // c1: strong but redundant with c0
                vec![2, 3],    // c2
                vec![5],       // c3
            ],
            vec![0; 6],
        )
    }

    #[test]
    fn top_k_falls_into_the_overlap_trap() {
        let s = overlap_trap();
        let topk = select_top_k_single(&s, 2);
        // Individual ranking picks the two redundant strongest.
        assert_eq!(topk.selected, vec![0, 1]);
        assert!((topk.cinf - 3.0).abs() < 1e-12);
        // The greedy avoids the trap and captures 5 users.
        let g = greedy::select(&s, 2);
        assert_eq!(g.selected_sorted(), vec![0, 2]);
        assert!((g.cinf - 5.0).abs() < 1e-12);
        assert!(g.cinf > topk.cinf);
    }

    #[test]
    fn top_k_never_beats_greedy() {
        let mut seed = 3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..40 {
            let n_users = 5 + (next() % 40) as usize;
            let n_cands = 3 + (next() % 10) as usize;
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 3) as u32).collect();
            let sets = InfluenceSets::new(omega_c, f_count);
            let k = 1 + (next() as usize % n_cands);
            let g = greedy::select(&sets, k);
            let t = select_top_k_single(&sets, k);
            assert!(
                g.cinf >= t.cinf - 1e-9,
                "top-k beat greedy?! {} vs {}",
                t.cinf,
                g.cinf
            );
        }
    }

    #[test]
    fn k_equals_one_matches_greedy() {
        let s = overlap_trap();
        assert_eq!(
            select_top_k_single(&s, 1).selected,
            greedy::select(&s, 1).selected
        );
    }
}
