//! The IQuad-tree-based solution (paper Algorithm 2) in its three flavours:
//!
//! * `IQT-C` — IS + NIR pruning only (the pure contribution of the paper).
//! * `IQT`   — additionally intersects the undecided sets with the NIB
//!   regions (Algorithm 2 lines 5–12); the paper's recommended variant.
//! * `IQT-PINO` — further layers the IA rule; Table I shows the extra range
//!   queries cost more than they save, and this implementation reproduces
//!   that by actually doing the work.
//!
//! The four phases: (1) index-based pruning via `Traverse` (Algorithm 3),
//! (2) exact verification with early stopping of the undecided pairs,
//! (3) competitive-influence computation, (4) greedy updating — phase 3/4
//! live in [`crate::greedy`]; this module produces the influence sets.

use crate::algorithms::IqtConfig;
use crate::parallel::{map_chunks, map_items};
use crate::pruning::{ia_contains, nib_contains, nib_query_rect, MmrTable};
use crate::verify::{Verifier, VerifyScratch};
use crate::{InfluenceSets, PhaseTimes, Problem, PruneStats};
use mc2ls_geo::Point;
use mc2ls_index::{setops, IQuadTree, RTree};
use mc2ls_influence::ProbabilityFunction;
use std::time::Instant;

/// Computes influence relationships with the IQuad-tree pruning pipeline.
pub fn influence_sets<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    config: &IqtConfig,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    influence_sets_parallel(problem, config, 1)
}

/// [`influence_sets`] across `threads` workers. Every phase chunks its item
/// space contiguously (see [`crate::parallel`]): traversals per abstract
/// facility, NIB/IA R-tree queries per user, and exact verification per
/// abstract facility. Chunk results are stitched in chunk order and partial
/// statistics are summed, so the returned `InfluenceSets` **and**
/// `PruneStats` are bit-identical to the serial run for any thread count
/// (assertion-tested in `tests/parallel_equivalence.rs`). `PhaseTimes` are
/// wall-clock per phase, measured on the coordinating thread — not summed
/// across workers.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn influence_sets_parallel<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
    config: &IqtConfig,
    threads: usize,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    assert!(threads >= 1, "need at least one worker thread");
    let mut stats = PruneStats::default();
    let mut times = PhaseTimes::default();

    let n_users = problem.n_users();
    let n_cands = problem.n_candidates();
    let n_facs = problem.n_facilities();
    let n_abstract = n_cands + n_facs;
    stats.pairs_total = (n_abstract * n_users) as u64;

    // Abstract facilities: candidates first, then facilities (paper's
    // `v ∈ C ∪ F`), materialised so workers can index any chunk.
    let points: Vec<Point> = problem
        .candidates
        .iter()
        .chain(problem.facilities.iter())
        .copied()
        .collect();

    // Lines 1–2: build the IQuad-tree, record NIR. The blocked verification
    // substrate is built alongside (once, shared by every worker).
    let t = Instant::now();
    let iqt = IQuadTree::build(
        &problem.users,
        &problem.pf,
        problem.tau,
        config.leaf_diagonal,
    );
    let verifier = Verifier::build(problem);
    times.indexing = t.elapsed();

    // Lines 3–4: Traverse per abstract facility (IS + NIR rules).
    // Facilities are independent; each worker reuses one scratch across its
    // chunk, preserving the batch-wise property per worker.
    let t = Instant::now();
    let mut influenced: Vec<Vec<u32>> = Vec::with_capacity(n_abstract);
    let mut to_verify: Vec<Vec<u32>> = Vec::with_capacity(n_abstract);
    let outcome_chunks = map_chunks(n_abstract, threads, |range| {
        let mut scratch = iqt.scratch();
        range
            .map(|i| iqt.traverse_shared(&points[i], &mut scratch))
            .collect::<Vec<_>>()
    });
    for outcome in outcome_chunks.into_iter().flatten() {
        stats.is_decided += outcome.influenced.len() as u64;
        stats.nir_decided += (n_users - outcome.influenced.len() - outcome.to_verify.len()) as u64;
        influenced.push(outcome.influenced);
        to_verify.push(outcome.to_verify);
    }
    times.pruning = t.elapsed();

    // Lines 5–12: optional NIB (and IA) integration over R-trees of C and F.
    if config.use_nib || config.use_ia {
        let t = Instant::now();
        let rt_c = RTree::bulk_load(
            problem
                .candidates
                .iter()
                .enumerate()
                // lint:allow(narrowing-cast): i enumerates candidates, whose count fits the u32 id space by construction
                .map(|(i, p)| (i as u32, *p))
                .collect(),
        );
        let rt_f = RTree::bulk_load(
            problem
                .facilities
                .iter()
                .enumerate()
                // lint:allow(narrowing-cast): candidate and facility counts both fit the u32 id space by construction
                .map(|(i, p)| (i as u32 + n_cands as u32, *p))
                .collect(),
        );
        let mmr = MmrTable::build(&problem.pf, problem.tau, problem.r_max());
        times.indexing += t.elapsed();

        let t = Instant::now();
        // Conservative relevance: a user in no candidate's influenced or
        // to-verify set can never be candidate-influenced (pruning is
        // sound), so its facility relationships never enter the objective —
        // skip its facility-side NIB queries outright.
        let mut maybe_relevant = vec![false; n_users];
        for v in 0..n_cands {
            for &o in influenced[v].iter().chain(to_verify[v].iter()) {
                maybe_relevant[o as usize] = true;
            }
        }
        // Users are independent: each worker runs the R-tree queries for a
        // contiguous user chunk into private per-v lists. Serial execution
        // pushes users in ascending id order, so concatenating the chunks in
        // chunk order rebuilds exactly the serial lists.
        let query_chunks = map_chunks(n_users, threads, |range| {
            let mut nib_possible: Vec<Vec<u32>> = vec![Vec::new(); n_abstract];
            let mut ia_certain: Vec<Vec<u32>> = vec![Vec::new(); n_abstract];
            for o in range {
                let user = &problem.users[o];
                let Some(radius) = mmr.get(user.len()) else {
                    continue; // never appears in any NIB set ⇒ dropped below
                };
                let window = nib_query_rect(user.mbr(), radius);
                let mut handle = |v: u32, p: Point| {
                    if config.use_ia && ia_contains(user.mbr(), &p, radius) {
                        // lint:allow(narrowing-cast): o enumerates users, whose count fits the u32 id space by construction
                        ia_certain[v as usize].push(o as u32);
                    } else if nib_contains(user.mbr(), &p, radius) {
                        // lint:allow(narrowing-cast): o enumerates users, whose count fits the u32 id space by construction
                        nib_possible[v as usize].push(o as u32);
                    }
                };
                rt_c.for_each_in_rect(&window, &mut handle);
                if maybe_relevant[o] {
                    rt_f.for_each_in_rect(&window, &mut handle);
                }
            }
            (nib_possible, ia_certain)
        });
        let mut nib_possible: Vec<Vec<u32>> = vec![Vec::new(); n_abstract];
        let mut ia_certain: Vec<Vec<u32>> = vec![Vec::new(); n_abstract];
        for (nib_part, ia_part) in query_chunks {
            for (v, part) in nib_part.into_iter().enumerate() {
                nib_possible[v].extend(part);
            }
            for (v, part) in ia_part.into_iter().enumerate() {
                ia_certain[v].extend(part);
            }
        }

        // Set algebra per abstract facility — independent across v.
        let folded = map_items(n_abstract, threads, |v| {
            let mut inf = influenced[v].clone();
            let mut tv = to_verify[v].clone();
            let mut ia = ia_certain[v].clone();
            let mut nib = nib_possible[v].clone();
            let mut ia_decided = 0u64;
            let mut nib_decided = 0u64;
            if config.use_ia && !ia.is_empty() {
                setops::normalize(&mut ia);
                // Users certain by IA skip verification entirely.
                let moved = setops::intersect(&tv, &ia);
                ia_decided = moved.len() as u64;
                tv = setops::difference(&tv, &moved);
                setops::union_into(&mut inf, &moved);
            }
            if config.use_nib {
                setops::normalize(&mut nib);
                // Line 12: Ω′_v := Ω′_v ∩ Ω_v^NIB — users outside the NIB
                // region of v cannot be influenced. IA-certain users are
                // deliberately absent from nib_possible; they were already
                // moved out of Ω′_v above.
                let keep = if config.use_ia {
                    setops::union(&nib, &ia)
                } else {
                    nib
                };
                let before = tv.len();
                tv = setops::intersect(&tv, &keep);
                nib_decided = (before - tv.len()) as u64;
            }
            (inf, tv, ia_decided, nib_decided)
        });
        for (v, (inf, tv, ia_decided, nib_decided)) in folded.into_iter().enumerate() {
            influenced[v] = inf;
            to_verify[v] = tv;
            stats.ia_decided += ia_decided;
            stats.nib_decided += nib_decided;
        }
        times.pruning += t.elapsed();
    }

    // Lines 13–17: exact verification with early stopping. Candidates are
    // verified first; facility pairs are then restricted to users at least
    // one candidate influences (the Ω′ optimisation of Algorithm 1 line 10,
    // applied symmetrically) — other users' `F_o` never enters the
    // objective, so skipping them cannot change the solution.
    //
    // Each worker counts probability evaluations and block outcomes in
    // private scratch (no cache-line contention); every stop is per-pair
    // deterministic, so the summed totals match a serial run exactly.
    let t = Instant::now();
    let verify_hits = |point: &Point, list: &[u32], scratch: &mut VerifyScratch| -> Vec<u32> {
        let mut hits: Vec<u32> = Vec::new();
        for &o in list {
            if verifier.influences(point, o, scratch) {
                hits.push(o);
            }
        }
        hits
    };
    let cand_chunks = map_chunks(n_cands, threads, |range| {
        let mut scratch = verifier.scratch();
        let mut verified = 0u64;
        let hits: Vec<Vec<u32>> = range
            .map(|v| {
                verified += to_verify[v].len() as u64;
                verify_hits(&problem.candidates[v], &to_verify[v], &mut scratch)
            })
            .collect();
        (hits, verified, scratch.counts())
    });
    {
        let mut v = 0usize;
        for (hits, verified, counts) in cand_chunks {
            stats.verified += verified;
            counts.add_to(&mut stats);
            for h in hits {
                setops::union_into(&mut influenced[v], &h);
                v += 1;
            }
        }
    }
    let mut relevant = vec![false; n_users];
    for list in &influenced[..n_cands] {
        for &o in list {
            relevant[o as usize] = true;
        }
    }
    let fac_chunks = map_chunks(n_facs, threads, |range| {
        let mut scratch = verifier.scratch();
        let mut verified = 0u64;
        let mut irrelevant = 0u64;
        let hits: Vec<Vec<u32>> = range
            .map(|f| {
                let v = n_cands + f;
                let kept: Vec<u32> = to_verify[v]
                    .iter()
                    .copied()
                    .filter(|&o| relevant[o as usize])
                    .collect();
                irrelevant += (to_verify[v].len() - kept.len()) as u64;
                verified += kept.len() as u64;
                verify_hits(&problem.facilities[f], &kept, &mut scratch)
            })
            .collect();
        (hits, verified, irrelevant, scratch.counts())
    });
    {
        let mut v = n_cands;
        for (hits, verified, irrelevant, counts) in fac_chunks {
            stats.verified += verified;
            stats.irrelevant += irrelevant;
            counts.add_to(&mut stats);
            for h in hits {
                setops::union_into(&mut influenced[v], &h);
                v += 1;
            }
        }
    }
    times.verification = t.elapsed();

    // Assemble Ω_c and |F_o|.
    let omega_c: Vec<Vec<u32>> = influenced[..n_cands].to_vec();
    let mut f_count = vec![0u32; n_users];
    for list in &influenced[n_cands..] {
        for &o in list {
            f_count[o as usize] += 1;
        }
    }

    (InfluenceSets::new(omega_c, f_count), stats, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn random_problem(seed: u64, n_users: usize, n_f: usize, n_c: usize, tau: f64) -> Problem {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let users: Vec<MovingUser> = (0..n_users)
            .map(|_| {
                let cx = next() * 25.0;
                let cy = next() * 25.0;
                let r = 1 + (next() * 10.0) as usize;
                MovingUser::new(
                    (0..r)
                        .map(|_| Point::new(cx + next() * 3.0, cy + next() * 3.0))
                        .collect(),
                )
            })
            .collect();
        let facilities = (0..n_f)
            .map(|_| Point::new(next() * 25.0, next() * 25.0))
            .collect();
        let candidates = (0..n_c)
            .map(|_| Point::new(next() * 25.0, next() * 25.0))
            .collect();
        Problem::new(
            users,
            facilities,
            candidates,
            2.min(n_c),
            tau,
            Sigmoid::paper_default(),
        )
    }

    fn assert_equivalent_sets(a: &InfluenceSets, b: &InfluenceSets, label: &str) {
        assert_eq!(a.csr(), b.csr(), "{label}: omega_c diverged");
        for list in a.iter_omegas() {
            for &o in list {
                assert_eq!(
                    a.f_count[o as usize], b.f_count[o as usize],
                    "{label}: f_count diverged for user {o}"
                );
            }
        }
    }

    #[test]
    fn all_variants_match_baseline() {
        for seed in 1..10u64 {
            for tau in [0.3, 0.6, 0.8] {
                let p = random_problem(seed, 50, 10, 12, tau);
                let (base, _, _) = baseline::influence_sets(&p);
                for config in [
                    IqtConfig::iqt_c(2.0),
                    IqtConfig::iqt(2.0),
                    IqtConfig::iqt_pino(2.0),
                ] {
                    let (got, stats, _) = influence_sets(&p, &config);
                    assert_equivalent_sets(&base, &got, &format!("seed={seed} tau={tau}"));
                    assert_eq!(
                        stats.is_decided
                            + stats.nir_decided
                            + stats.ia_decided
                            + stats.nib_decided
                            + stats.irrelevant
                            + stats.verified,
                        stats.pairs_total,
                        "pair accounting broken (seed={seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_pipeline_is_bit_identical() {
        let p = random_problem(7, 70, 12, 10, 0.5);
        for config in [
            IqtConfig::iqt_c(2.0),
            IqtConfig::iqt(2.0),
            IqtConfig::iqt_pino(2.0),
        ] {
            let (sets, stats, _) = influence_sets(&p, &config);
            for threads in [2usize, 4, 7] {
                let (par_sets, par_stats, _) = influence_sets_parallel(&p, &config, threads);
                assert_eq!(sets, par_sets, "threads={threads}");
                assert_eq!(stats, par_stats, "threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let p = random_problem(2, 10, 3, 3, 0.5);
        influence_sets_parallel(&p, &IqtConfig::iqt(2.0), 0);
    }

    #[test]
    fn facility_influence_is_complete_where_it_matters() {
        // IQT skips facility verification for users no candidate influences
        // (their weight is never read); for every user some candidate does
        // influence, f_count must match baseline exactly.
        let p = random_problem(3, 60, 15, 10, 0.5);
        let (base, _, _) = baseline::influence_sets(&p);
        let (got, _, _) = influence_sets(&p, &IqtConfig::iqt_c(2.0));
        let mut relevant = vec![false; p.n_users()];
        for list in base.iter_omegas() {
            for &o in list {
                relevant[o as usize] = true;
            }
        }
        for (o, &rel) in relevant.iter().enumerate() {
            if rel {
                assert_eq!(base.f_count[o], got.f_count[o], "user {o}");
            }
        }
    }

    #[test]
    fn leaf_diagonal_does_not_change_results() {
        let p = random_problem(11, 40, 8, 8, 0.6);
        let (a, _, _) = influence_sets(&p, &IqtConfig::iqt(1.0));
        let (b, _, _) = influence_sets(&p, &IqtConfig::iqt(2.5));
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_reduces_verification_versus_baseline() {
        let p = random_problem(5, 120, 20, 20, 0.6);
        let (_, base_stats, _) = baseline::influence_sets(&p);
        let (_, iqt_stats, _) = influence_sets(&p, &IqtConfig::iqt(2.0));
        assert!(iqt_stats.verified < base_stats.verified);
        assert!(iqt_stats.prob_evals <= base_stats.prob_evals);
    }
}
