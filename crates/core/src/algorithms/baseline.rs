//! The Baseline greedy (paper §IV-A): exhaustively evaluate every
//! candidate–user and facility–user pair with the cumulative probability
//! model, then select greedily. Complexity `O((n+m)·u·r + 2kn)`.

use crate::verify::Verifier;
use crate::{InfluenceSets, PhaseTimes, Problem, PruneStats};
use mc2ls_influence::ProbabilityFunction;
use std::time::Instant;

/// Computes the full influence relationships with no pruning at all.
///
/// "No pruning" refers to the pair level: every candidate–user and
/// facility–user pair is decided exactly. Each individual decision still
/// goes through the configured verification kernel (blocked when
/// `problem.block_size > 0`), which changes the evaluation count but never
/// the decision.
pub fn influence_sets<PF: ProbabilityFunction>(
    problem: &Problem<PF>,
) -> (InfluenceSets, PruneStats, PhaseTimes) {
    let t_index = Instant::now();
    let verifier = Verifier::build(problem);
    let indexing = t_index.elapsed();

    let t0 = Instant::now();
    let mut scratch = verifier.scratch();
    let n_users = problem.n_users();

    let omega_c: Vec<Vec<u32>> = problem
        .candidates
        .iter()
        .map(|c| {
            (0..n_users as u32)
                .filter(|&o| verifier.influences(c, o, &mut scratch))
                .collect()
        })
        .collect();

    let mut f_count = vec![0u32; n_users];
    for f in &problem.facilities {
        for (o, cnt) in f_count.iter_mut().enumerate() {
            if verifier.influences(f, o as u32, &mut scratch) {
                *cnt += 1;
            }
        }
    }

    let pairs = ((problem.n_candidates() + problem.n_facilities()) * n_users) as u64;
    let mut stats = PruneStats {
        pairs_total: pairs,
        verified: pairs,
        ..PruneStats::default()
    };
    scratch.counts().add_to(&mut stats);
    let times = PhaseTimes {
        indexing,
        verification: t0.elapsed(),
        ..PhaseTimes::default()
    };
    (InfluenceSets::new(omega_c, f_count), stats, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    fn small_problem() -> Problem {
        // Three user clusters; candidates near two of them, a facility near
        // one.
        let users = vec![
            MovingUser::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.2, 0.1),
                Point::new(0.1, 0.2),
            ]),
            MovingUser::new(vec![
                Point::new(5.0, 5.0),
                Point::new(5.1, 5.2),
                Point::new(5.2, 5.0),
            ]),
            MovingUser::new(vec![Point::new(10.0, 0.0), Point::new(10.1, 0.1)]),
        ];
        let facilities = vec![Point::new(0.1, 0.1)];
        let candidates = vec![
            Point::new(0.0, 0.1),
            Point::new(5.1, 5.1),
            Point::new(20.0, 20.0),
        ];
        Problem::new(
            users,
            facilities,
            candidates,
            2,
            0.5,
            Sigmoid::paper_default(),
        )
    }

    #[test]
    fn influence_sets_are_correct() {
        let p = small_problem();
        let (sets, stats, _) = influence_sets(&p);
        // Candidate 0 influences user 0 (three close positions).
        assert_eq!(sets.omega(0), [0]);
        // Candidate 1 influences user 1.
        assert_eq!(sets.omega(1), [1]);
        // Candidate 2 is far from everyone.
        assert!(sets.omega(2).is_empty());
        // Facility competes for user 0 only.
        assert_eq!(sets.f_count, vec![1, 0, 0]);
        assert_eq!(stats.pairs_total, stats.verified);
        // The blocked kernel may decide pairs from bounds alone; some work
        // must be recorded either way.
        assert!(stats.prob_evals + stats.blocks_bounded_out > 0);
    }

    #[test]
    fn blocked_and_plain_kernels_agree() {
        let p = small_problem();
        let (blocked, b_stats, _) = influence_sets(&p);
        let (plain, p_stats, _) =
            influence_sets(&p.clone().with_block_size(mc2ls_influence::BLOCK_SIZE_PLAIN));
        assert_eq!(blocked, plain);
        // Plain kernel records no block activity; on this clustered instance
        // the block bounds decide pairs cheaper than the per-position walk.
        assert_eq!(p_stats.blocks_opened + p_stats.blocks_bounded_out, 0);
        assert!(b_stats.prob_evals <= p_stats.prob_evals);
    }

    #[test]
    fn greedy_on_baseline_sets_picks_best_pair() {
        let p = small_problem();
        let (sets, _, _) = influence_sets(&p);
        let sol = greedy::select(&sets, 2);
        // User 1 is uncontested (weight 1) so candidate 1 is first; then
        // candidate 0 adds user 0 at weight 1/2.
        assert_eq!(sol.selected, vec![1, 0]);
        assert!((sol.cinf - 1.5).abs() < 1e-12);
    }
}
