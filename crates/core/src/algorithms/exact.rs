//! Exact optimum for small instances via branch-and-bound enumeration.
//!
//! MC²LS is NP-hard (paper Theorem 1, reduction from Maximum k-Coverage), so
//! this solver is exponential and intended as a *test oracle*: the
//! integration suite uses it to check the `(1 − 1/e)` approximation bound of
//! the greedy algorithms on exhaustively solvable instances.
//!
//! The search enumerates k-subsets in decreasing order of individual
//! `cinf(c)` and prunes with the submodular upper bound
//! `cinf(G) + Σ top-(k−|G|) remaining individual cinf`, which is valid
//! because `cinf(G ∪ {c}) − cinf(G) ≤ cinf({c})`.

use crate::greedy::canonical_gain_model;
use crate::{Bitset, InfluenceSets, Solution};
use mc2ls_influence::CompetitionModel;

/// Practical safety cap: enumeration beyond this many candidates would not
/// terminate in reasonable time.
pub const MAX_EXACT_CANDIDATES: usize = 30;

/// `cinf(set)` under an arbitrary competition model: per-weight-class
/// counts over the covered-user union, materialised through the shared
/// canonical gain walk (so a singleton's value here is bit-identical to
/// the selectors' round-1 gain for the same candidate).
fn cinf_set_model<M: CompetitionModel>(
    sets: &InfluenceSets,
    set: &[u32],
    n_classes: usize,
    model: &M,
) -> f64 {
    let mut covered = Bitset::new(sets.n_users());
    let mut counts = vec![0u32; n_classes];
    for &c in set {
        for &o in sets.omega(c as usize) {
            if !covered.contains(o) {
                covered.insert(o);
                counts[sets.f_count[o as usize] as usize] += 1;
            }
        }
    }
    canonical_gain_model(&counts, model)
}

/// Finds the best subset of **at most** `k` candidates under an arbitrary
/// competition model by branch-and-bound — the routing target for models
/// whose [`is_submodular`](CompetitionModel::is_submodular) is `false`,
/// where greedy's marginal-gain argument certifies nothing.
///
/// Differences from [`solve_exact`], both required once monotonicity is
/// gone:
///
/// * the incumbent is updated at **every** enumeration prefix, not only at
///   full `k`-subsets — with mixed-sign class weights a smaller set may
///   beat every `k`-set (the empty set is the floor: value 0);
/// * the upper bound adds the top-`(k−|G|)` **positive parts** of the
///   singleton values: a class's contribution on the uncovered remainder
///   never exceeds its full-count contribution when that is positive, and
///   is otherwise at most 0, so the bound stays admissible for any
///   fixed-per-class-weight model.
///
/// Ties between equal-value subsets keep the first one found in the
/// positive-part-ordered enumeration — deterministic in the inputs.
///
/// # Panics
/// Panics when `k` exceeds the candidate count or the candidate count
/// exceeds [`MAX_EXACT_CANDIDATES`].
pub fn solve_exact_model<M: CompetitionModel>(
    sets: &InfluenceSets,
    k: usize,
    model: &M,
) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert!(
        n <= MAX_EXACT_CANDIDATES,
        "exact solver is capped at {MAX_EXACT_CANDIDATES} candidates (got {n})"
    );
    let n_classes = sets.n_weight_classes();

    // Positive parts of the singleton values, descending, for the bound.
    let singles: Vec<f64> = (0..n)
        .map(|c| cinf_set_model(sets, &[c as u32], n_classes, model).max(0.0))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| singles[b].total_cmp(&singles[a]).then(a.cmp(&b)));
    let sorted_singles: Vec<f64> = order.iter().map(|&c| singles[c]).collect();
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + sorted_singles[i];
    }
    let top_from = |i: usize, j: usize| -> f64 {
        let end = (i + j).min(n);
        prefix[end] - prefix[i]
    };

    // DFS over the ordered enumeration tree; the incumbent starts at the
    // empty set (value 0) and is challenged at every prefix.
    let mut best_value = 0.0f64;
    let mut best_set: Vec<u32> = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (order index, depth)
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    let mut values: Vec<f64> = vec![0.0]; // value at each chosen depth
    for i in (0..n).rev() {
        stack.push((i, 0));
    }
    while let Some((i, depth)) = stack.pop() {
        chosen.truncate(depth);
        values.truncate(depth + 1);
        let parent_value = values[depth];
        if parent_value + top_from(i, k - depth) <= best_value + 1e-15 {
            continue; // admissible bound: no extension from here can win
        }
        chosen.push(order[i] as u32);
        let value = cinf_set_model(sets, &chosen, n_classes, model);
        values.push(value);
        if value > best_value + 1e-15 {
            best_value = value;
            best_set = chosen.clone();
        }
        if depth + 1 < k {
            for j in ((i + 1)..n).rev() {
                stack.push((j, depth + 1));
            }
        }
    }

    best_set.sort_unstable();
    let cinf = cinf_set_model(sets, &best_set, n_classes, model);
    let mut gains = Vec::with_capacity(best_set.len());
    let mut prev = 0.0;
    for i in 0..best_set.len() {
        let v = cinf_set_model(sets, &best_set[..=i], n_classes, model);
        gains.push(v - prev);
        prev = v;
    }
    Solution {
        selected: best_set,
        marginal_gains: gains,
        cinf,
    }
}

/// Finds the optimal `k`-subset by branch-and-bound.
///
/// # Panics
/// Panics when `k` exceeds the candidate count or the candidate count
/// exceeds [`MAX_EXACT_CANDIDATES`].
pub fn solve_exact(sets: &InfluenceSets, k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert!(
        n <= MAX_EXACT_CANDIDATES,
        "exact solver is capped at {MAX_EXACT_CANDIDATES} candidates (got {n})"
    );

    // Order candidates by individual cinf, descending, for tighter bounds.
    let mut order: Vec<usize> = (0..n).collect();
    let singles: Vec<f64> = (0..n).map(|c| sets.cinf_candidate(c)).collect();
    order.sort_by(|&a, &b| singles[b].total_cmp(&singles[a]).then(a.cmp(&b)));

    // Suffix sums of the top-j singles from position i onward.
    // suffix_top[i][j] = sum of the j largest singles among order[i..].
    // Since order is sorted descending, that is simply the next j entries.
    let sorted_singles: Vec<f64> = order.iter().map(|&c| singles[c]).collect();
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + sorted_singles[i];
    }
    let top_from = |i: usize, j: usize| -> f64 {
        let end = (i + j).min(n);
        prefix[end] - prefix[i]
    };

    struct Search<'a> {
        sets: &'a InfluenceSets,
        order: &'a [usize],
        k: usize,
        best_value: f64,
        best_set: Vec<u32>,
        top_from: Box<dyn Fn(usize, usize) -> f64 + 'a>,
    }

    impl Search<'_> {
        fn dfs(&mut self, start: usize, chosen: &mut Vec<u32>, covered_value: f64) {
            if chosen.len() == self.k {
                if covered_value > self.best_value + 1e-15 {
                    self.best_value = covered_value;
                    self.best_set = chosen.clone();
                }
                return;
            }
            let need = self.k - chosen.len();
            let n = self.order.len();
            if n - start < need {
                return;
            }
            // Submodular upper bound.
            if covered_value + (self.top_from)(start, need) <= self.best_value + 1e-15 {
                return;
            }
            for i in start..n {
                let c = self.order[i] as u32;
                chosen.push(c);
                let value = self.sets.cinf_set(chosen);
                self.dfs(i + 1, chosen, value);
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        sets,
        order: &order,
        k,
        best_value: f64::NEG_INFINITY,
        best_set: Vec::new(),
        top_from: Box::new(top_from),
    };
    let mut chosen = Vec::with_capacity(k);
    search.dfs(0, &mut chosen, 0.0);

    let mut selected = search.best_set;
    selected.sort_unstable();
    let cinf = sets.cinf_set(&selected);
    // Marginal gains in pick order are not meaningful for an exact optimum;
    // report each candidate's contribution in the listed order.
    let mut gains = Vec::with_capacity(selected.len());
    let mut prev = 0.0;
    for i in 0..selected.len() {
        let v = sets.cinf_set(&selected[..=i]);
        gains.push(v - prev);
        prev = v;
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;

    fn paper_sets() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn optimum_on_paper_example() {
        // Hand enumeration of the paper's example: cinf({c₁,c₂}) = 4/3,
        // cinf({c₁,c₃}) = 11/6, and cinf({c₂,c₃}) = 1/3+1/2+1/2+1 = 7/3,
        // so the optimum for k = 2 is {c₂, c₃}.
        let s = paper_sets();
        let opt = solve_exact(&s, 2);
        assert_eq!(opt.selected, vec![1, 2]);
        assert!((opt.cinf - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_meets_approximation_bound_on_paper_example() {
        let s = paper_sets();
        let opt = solve_exact(&s, 2);
        let g = greedy::select(&s, 2);
        // Greedy picks {c₃, c₂} here, which is optimal.
        assert!(g.cinf >= (1.0 - 1.0 / std::f64::consts::E) * opt.cinf - 1e-12);
        assert!((g.cinf - opt.cinf).abs() < 1e-12);
    }

    #[test]
    fn exact_beats_or_equals_greedy_randomly() {
        let mut seed = 12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..30 {
            let n_users = 5 + (next() % 25) as usize;
            let n_cands = 3 + (next() % 10) as usize;
            let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 3) as u32).collect();
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c, f_count);
            let k = 1 + (next() as usize % n_cands.min(4));
            let opt = solve_exact(&sets, k);
            let g = greedy::select(&sets, k);
            assert!(opt.cinf >= g.cinf - 1e-9, "exact below greedy!");
            assert!(
                g.cinf >= (1.0 - 1.0 / std::f64::consts::E) * opt.cinf - 1e-9,
                "approximation bound violated: greedy={} opt={}",
                g.cinf,
                opt.cinf
            );
            assert_eq!(opt.selected.len(), k);
        }
    }

    #[test]
    fn k_equals_n_selects_everything() {
        let s = paper_sets();
        let opt = solve_exact(&s, 3);
        assert_eq!(opt.selected, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn rejects_oversized_instances() {
        let sets = InfluenceSets::new(vec![vec![]; 31], vec![]);
        solve_exact(&sets, 1);
    }
}
