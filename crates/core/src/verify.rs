//! The shared exact-verification kernel behind every algorithm's
//! "line 13–17" phase.
//!
//! [`Verifier`] owns the problem's [`PositionBlocks`] (built once at the
//! block size [`resolve_block_size`] derives from the configuration —
//! fixed, auto-probed, or disabled — immutable, `Sync`, shared by reference
//! across all candidates and worker threads) and dispatches each
//! `Pr_v(o) ≥ τ` decision to the lane kernel
//! ([`influences_blocked_counted`]), its exact-`exp` twin when
//! `Problem::pf_exact` is set, or the plain per-position kernel when
//! blocking is disabled. Decisions are identical in every mode; only the
//! instrumented evaluation counts differ.
//!
//! Workers carry a private [`VerifyScratch`] (bound buffers + counters, all
//! `!Sync` by construction) and the per-worker counts are summed at join —
//! addition commutes, so the reported [`PruneStats`](crate::PruneStats)
//! counters are identical for every thread count. That includes the
//! fast-path fallback count: whether a user's decision lands inside the
//! error band depends only on geometry and τ, never on which worker
//! verifies it.
//!
//! [`resolve_block_size`]: mc2ls_influence::resolve_block_size

use crate::Problem;
use mc2ls_geo::Point;
use mc2ls_influence::{
    influences_blocked_counted, influences_blocked_exact_counted, influences_counted,
    resolve_block_size, BlockCounters, BlockScratch, EvalCounter, PositionBlocks,
    ProbabilityFunction,
};

/// Per-problem verification state: the blocked substrate (if enabled) plus
/// the problem reference the kernels need.
pub(crate) struct Verifier<'a, PF: ProbabilityFunction> {
    problem: &'a Problem<PF>,
    blocks: Option<PositionBlocks>,
}

impl<'a, PF: ProbabilityFunction> Verifier<'a, PF> {
    /// Builds the substrate for `problem` at the resolved block size (a
    /// no-op for `BLOCK_SIZE_PLAIN`). Callers time this under their
    /// indexing phase.
    pub fn build(problem: &'a Problem<PF>) -> Self {
        let blocks = resolve_block_size(&problem.users, problem.block_size)
            .map(|bs| PositionBlocks::build(&problem.users, bs));
        Verifier { problem, blocks }
    }

    /// A fresh per-worker scratch (buffers + zeroed counters).
    pub fn scratch(&self) -> VerifyScratch {
        VerifyScratch::default()
    }

    /// The exact `Pr_v(o) ≥ τ` decision for user `o` against site `v`,
    /// through whichever kernel the problem configured.
    #[inline]
    pub fn influences(&self, v: &Point, o: u32, s: &mut VerifyScratch) -> bool {
        match &self.blocks {
            Some(blocks) if self.problem.pf_exact => influences_blocked_exact_counted(
                &self.problem.pf,
                v,
                blocks,
                o,
                self.problem.tau,
                &mut s.bounds,
                &s.evals,
                &s.blocks,
            ),
            Some(blocks) => influences_blocked_counted(
                &self.problem.pf,
                v,
                blocks,
                o,
                self.problem.tau,
                &mut s.bounds,
                &s.evals,
                &s.blocks,
            ),
            None => influences_counted(
                &self.problem.pf,
                v,
                self.problem.users[o as usize].positions(),
                self.problem.tau,
                &s.evals,
            ),
        }
    }
}

/// One worker's reusable verification scratch and counters.
#[derive(Default)]
pub(crate) struct VerifyScratch {
    bounds: BlockScratch,
    evals: EvalCounter,
    blocks: BlockCounters,
}

impl VerifyScratch {
    /// Folds another scratch's counters into this one (merging per-worker
    /// accumulators; the buffers are irrelevant at that point).
    pub fn absorb(&self, other: &VerifyScratch) {
        self.evals.add(other.evals.get());
        self.blocks.merge(&other.blocks);
    }

    /// The accumulated counts, field-for-field as they land in
    /// [`PruneStats`](crate::PruneStats).
    pub fn counts(&self) -> VerifyCounts {
        VerifyCounts {
            prob_evals: self.evals.get(),
            blocks_bounded_out: self.blocks.bounded_out(),
            blocks_opened: self.blocks.opened(),
            pf_fallbacks: self.blocks.fast_fallbacks(),
        }
    }
}

/// Summable verification counters (one per worker, merged at join).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct VerifyCounts {
    pub prob_evals: u64,
    pub blocks_bounded_out: u64,
    pub blocks_opened: u64,
    pub pf_fallbacks: u64,
}

impl VerifyCounts {
    /// Adds another worker's counts into this one.
    pub fn merge(&mut self, other: VerifyCounts) {
        self.prob_evals += other.prob_evals;
        self.blocks_bounded_out += other.blocks_bounded_out;
        self.blocks_opened += other.blocks_opened;
        self.pf_fallbacks += other.pf_fallbacks;
    }

    /// Writes the counts into the matching `PruneStats` fields (adding).
    pub fn add_to(&self, stats: &mut crate::PruneStats) {
        stats.prob_evals += self.prob_evals;
        stats.blocks_bounded_out += self.blocks_bounded_out;
        stats.blocks_opened += self.blocks_opened;
        stats.pf_fallbacks += self.pf_fallbacks;
    }
}
