//! Greedy selection of `k` candidates maximising the submodular objective
//! `cinf(G)` (paper §IV-A step 2–3 and Theorem 2).
//!
//! Two implementations with identical output:
//!
//! * [`select`] — the paper's procedure: each round re-evaluates `cinf(c)`
//!   over uncovered users for every remaining candidate and picks the
//!   maximum (ties broken toward the smaller candidate id, which makes all
//!   algorithms in this crate byte-for-byte comparable).
//! * [`select_lazy`] — CELF lazy evaluation exploiting the submodularity
//!   proven in Theorem 2: a candidate whose cached marginal gain (always an
//!   upper bound) cannot beat the current best is not re-evaluated. This is
//!   this repository's implementation of the "candidate-pruning strategy to
//!   further accelerate the computation" the paper's abstract highlights.

use crate::{Bitset, InfluenceSets, Solution};

/// The paper's greedy: re-evaluate every remaining candidate each round.
///
/// # Examples
/// ```
/// use mc2ls_core::{greedy, InfluenceSets};
///
/// // Two candidates over three users; user 2 is contested by one competitor.
/// let sets = InfluenceSets::new(vec![vec![0, 1], vec![1, 2]], vec![0, 0, 1]);
/// let sol = greedy::select(&sets, 1);
/// assert_eq!(sol.selected, vec![0]); // two uncontested users beat 1 + ½
/// assert!((sol.cinf - 2.0).abs() < 1e-12);
/// ```
pub fn select(sets: &InfluenceSets, k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    let mut covered = Bitset::new(sets.n_users());
    let mut taken = vec![false; n];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    for _round in 0..k {
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // c indexes three parallel arrays
        for c in 0..n {
            if taken[c] {
                continue;
            }
            let gain = marginal_gain(sets, c, &covered);
            match best {
                // Strict `>` keeps the smallest id on ties.
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        let (c, gain) = best.expect("k <= n guarantees a candidate remains");
        taken[c] = true;
        selected.push(c as u32);
        gains.push(gain);
        total += gain;
        for &o in sets.omega(c) {
            covered.insert(o);
        }
    }

    Solution {
        selected,
        marginal_gains: gains,
        cinf: total,
    }
}

/// CELF lazy greedy: identical output to [`select`], fewer re-evaluations.
pub fn select_lazy(sets: &InfluenceSets, k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    let mut covered = Bitset::new(sets.n_users());
    // (cached_gain, candidate, round_of_cache); BinaryHeap orders by gain,
    // then by *smaller* id via Reverse-style key on ties.
    use std::cmp::Ordering;
    #[derive(PartialEq)]
    struct Entry {
        gain: f64,
        cand: usize,
        round: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap by gain; on equal gains prefer the smaller id (so it
            // must compare as "greater").
            self.gain
                .total_cmp(&other.gain)
                .then_with(|| other.cand.cmp(&self.cand))
        }
    }

    let mut heap: std::collections::BinaryHeap<Entry> = (0..n)
        .map(|c| Entry {
            gain: sets.cinf_candidate(c),
            cand: c,
            round: 0,
        })
        .collect();

    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    for round in 1..=k {
        loop {
            let top = heap.pop().expect("heap cannot be empty while k <= n");
            if top.round == round - 1 {
                // Fresh enough: by submodularity no stale entry below can
                // exceed it, and any equal-gain fresh entry with a smaller
                // id would have sorted above it.
                selected.push(top.cand as u32);
                gains.push(top.gain);
                total += top.gain;
                for &o in sets.omega(top.cand) {
                    covered.insert(o);
                }
                break;
            }
            let fresh = marginal_gain(sets, top.cand, &covered);
            heap.push(Entry {
                gain: fresh,
                cand: top.cand,
                round: round - 1,
            });
        }
    }

    Solution {
        selected,
        marginal_gains: gains,
        cinf: total,
    }
}

/// Greedy selection under per-user **demand weights**: user `o` is worth
/// `demand[o] / (|F_o| + 1)` (spending power, visit frequency, or any other
/// business prior scaling the evenly-split competition weight). With unit
/// demands this is exactly [`select`].
pub fn select_with_demand(sets: &InfluenceSets, demand: &[f64], k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert_eq!(demand.len(), sets.n_users(), "one demand weight per user");
    assert!(
        demand.iter().all(|&d| d >= 0.0),
        "demands must be non-negative"
    );
    let mut covered = Bitset::new(sets.n_users());
    let mut taken = vec![false; n];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // c indexes parallel arrays
        for c in 0..n {
            if taken[c] {
                continue;
            }
            let gain: f64 = sets
                .omega(c)
                .iter()
                .filter(|&&o| !covered.contains(o))
                .map(|&o| demand[o as usize] * sets.weight(o))
                .sum();
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        let (c, gain) = best.expect("k <= n");
        taken[c] = true;
        selected.push(c as u32);
        gains.push(gain);
        total += gain;
        for &o in sets.omega(c) {
            covered.insert(o);
        }
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf: total,
    }
}

/// The marginal competitive influence of candidate `c` given covered users.
#[inline]
fn marginal_gain(sets: &InfluenceSets, c: usize, covered: &Bitset) -> f64 {
    sets.omega(c)
        .iter()
        .filter(|&&o| !covered.contains(o))
        .map(|&o| sets.weight(o))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Examples 1/3/4).
    fn paper_sets() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn example4_greedy_trace() {
        // Paper Example 4: first pick c₃ (cinf 3/2) and remove {o₁, o₃};
        // in round two c₂ retains o₂, o₄ (1/3 + 1/2 = 5/6) and beats c₁,
        // so the final result is {c₃, c₂}.
        let s = paper_sets();
        let sol = select(&s, 2);
        assert_eq!(sol.selected, vec![2, 1]);
        assert!((sol.marginal_gains[0] - 1.5).abs() < 1e-12);
        assert!((sol.marginal_gains[1] - 5.0 / 6.0).abs() < 1e-12);
        assert!((sol.cinf - (1.5 + 5.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn lazy_matches_standard_on_paper_example() {
        let s = paper_sets();
        let a = select(&s, 2);
        let b = select_lazy(&s, 2);
        assert_eq!(a.selected, b.selected);
        assert!((a.cinf - b.cinf).abs() < 1e-12);
    }

    #[test]
    fn lazy_matches_standard_on_many_random_instances() {
        // Deterministic pseudo-random instances exercising tie cases.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..50 {
            let n_users = 1 + (next() % 30) as usize;
            let n_cands = 1 + (next() % 12) as usize;
            let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 4) as u32).collect();
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c, f_count);
            let k = 1 + (next() as usize % n_cands);
            let a = select(&sets, k);
            let b = select_lazy(&sets, k);
            assert_eq!(a.selected, b.selected, "k={k}");
            assert!((a.cinf - b.cinf).abs() < 1e-9);
        }
    }

    #[test]
    fn gains_are_non_increasing() {
        let s = paper_sets();
        let sol = select(&s, 3);
        for w in sol.marginal_gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "greedy gains must be non-increasing");
        }
    }

    #[test]
    fn covers_empty_candidates_gracefully() {
        let s = InfluenceSets::new(vec![vec![], vec![0]], vec![0]);
        let sol = select(&s, 2);
        assert_eq!(sol.selected_sorted(), vec![0, 1]);
        assert!((sol.cinf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_demand_matches_plain_greedy() {
        let s = paper_sets();
        let a = select(&s, 2);
        let b = select_with_demand(&s, &[1.0; 4], 2);
        assert_eq!(a.selected, b.selected);
        assert!((a.cinf - b.cinf).abs() < 1e-12);
    }

    #[test]
    fn demand_steers_the_pick() {
        // Make user 3 (covered only by c1) enormously valuable.
        let s = paper_sets();
        let sol = select_with_demand(&s, &[1.0, 1.0, 1.0, 100.0], 1);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    #[should_panic(expected = "one demand weight per user")]
    fn demand_length_mismatch_panics() {
        select_with_demand(&paper_sets(), &[1.0, 1.0], 1);
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        // Two identical candidates: both implementations must pick id 0.
        let s = InfluenceSets::new(vec![vec![0], vec![0]], vec![0]);
        assert_eq!(select(&s, 1).selected, vec![0]);
        assert_eq!(select_lazy(&s, 1).selected, vec![0]);
    }
}
