//! Greedy selection of `k` candidates maximising the submodular objective
//! `cinf(G)` (paper §IV-A step 2–3 and Theorem 2).
//!
//! Three implementations with **byte-identical** output:
//!
//! * [`select`] — the paper's procedure: each round re-evaluates `cinf(c)`
//!   over uncovered users for every remaining candidate and picks the
//!   maximum (ties broken toward the smaller candidate id, which makes all
//!   algorithms in this crate byte-for-byte comparable).
//! * [`select_lazy`] — CELF lazy evaluation exploiting the submodularity
//!   proven in Theorem 2: a candidate whose cached marginal gain (always an
//!   upper bound) cannot beat the current best is not re-evaluated. This is
//!   this repository's implementation of the "candidate-pruning strategy to
//!   further accelerate the computation" the paper's abstract highlights.
//! * [`select_decremental`] — exact decremental gain maintenance over the
//!   inverted user → candidate CSR ([`InvertedIndex`]): instead of
//!   re-scanning `Ω_c` slices, each candidate keeps a per-weight-class
//!   count of its uncovered users, and selecting a candidate walks only the
//!   newly covered users' inverted lists to decrement the affected counts.
//!   Total update work over all `k` rounds is bounded by **one pass over
//!   the inverted CSR**, instead of `k` passes over the forward CSR.
//!
//! # Canonical gains
//!
//! Every user's competitive weight `1/(|F_o|+1)` (Equation 1) is one of a
//! small set of **weight classes** — one per distinct `|F_o|` value. All
//! selectors therefore evaluate a marginal gain the same way: count the
//! candidate's uncovered users per class, then materialise
//! `Σ_w counts[w]/(w+1)` in ascending class order ([`canonical_gain_model`]'s
//! fixed summation order). Equal class counts produce bit-identical `f64`
//! gains in every selector, which is what makes the three implementations
//! — and any worker-thread count — byte-for-byte comparable
//! (`tests/selector_equivalence.rs` asserts it).
//!
//! # Competition models
//!
//! The per-class weight is pluggable: every selector has a `_model`
//! variant taking a [`CompetitionModel`], whose `class_contribution(w,
//! n_w)` replaces the cumulative `n_w/(w+1)` term inside the same
//! ascending-class walk. The plain entry points are thin
//! [`Model::Cumulative`] wrappers, so the trait dispatch is on exactly one
//! funnel and the cumulative path stays bit-identical to the pre-trait
//! code. The selectors here require a **monotone submodular** model (CELF
//! treats stale gains as upper bounds); non-submodular models are routed
//! to exact branch-and-bound by `algorithms::run_selector_model`.

use crate::{Bitset, InfluenceSets, InvertedIndex, SelectionStats, Solution};
use mc2ls_influence::{CompetitionModel, Model};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Materialises a marginal gain from per-weight-class counts under `model`:
/// `Σ_w class_contribution(w, counts[w])`, accumulated in ascending class
/// order with empty classes skipped (a zero count contributes `+0.0` in
/// every shipped model, skipping just saves the divisions). Every selector
/// funnels gains through this one walk, so equal counts give bit-identical
/// gains everywhere.
#[inline]
pub(crate) fn canonical_gain_model<M: CompetitionModel>(counts: &[u32], model: &M) -> f64 {
    let mut total = 0.0;
    for (w, &n) in counts.iter().enumerate() {
        if n != 0 {
            total += model.class_contribution(w, n);
        }
    }
    total
}

/// Reusable weight-class counting scratch for the scanning selectors.
struct ClassScratch {
    counts: Vec<u32>,
}

impl ClassScratch {
    fn new(sets: &InfluenceSets) -> Self {
        ClassScratch {
            counts: vec![0u32; sets.n_weight_classes()],
        }
    }

    /// Counts candidate `c`'s uncovered users per weight class and
    /// materialises the canonical gain under `model`, leaving the scratch
    /// cleared.
    fn marginal_gain<M: CompetitionModel>(
        &mut self,
        sets: &InfluenceSets,
        c: usize,
        covered: &Bitset,
        model: &M,
    ) -> f64 {
        for &o in sets.omega(c) {
            if !covered.contains(o) {
                self.counts[sets.f_count[o as usize] as usize] += 1;
            }
        }
        let gain = canonical_gain_model(&self.counts, model);
        self.counts.iter_mut().for_each(|n| *n = 0);
        gain
    }
}

/// Candidate `c`'s full `cinf(c)` materialised canonically under `model`
/// (the round-1 marginal gain: no user is covered yet). Allocates its own
/// class scratch, so it is safe to call from parallel workers.
fn canonical_cinf<M: CompetitionModel>(
    sets: &InfluenceSets,
    c: usize,
    n_classes: usize,
    model: &M,
) -> f64 {
    let mut counts = vec![0u32; n_classes];
    for &o in sets.omega(c) {
        counts[sets.f_count[o as usize] as usize] += 1;
    }
    canonical_gain_model(&counts, model)
}

/// The paper's greedy: re-evaluate every remaining candidate each round.
///
/// # Examples
/// ```
/// use mc2ls_core::{greedy, InfluenceSets};
///
/// // Two candidates over three users; user 2 is contested by one competitor.
/// let sets = InfluenceSets::new(vec![vec![0, 1], vec![1, 2]], vec![0, 0, 1]);
/// let sol = greedy::select(&sets, 1);
/// assert_eq!(sol.selected, vec![0]); // two uncontested users beat 1 + ½
/// assert!((sol.cinf - 2.0).abs() < 1e-12);
/// ```
pub fn select(sets: &InfluenceSets, k: usize) -> Solution {
    select_counted(sets, k).0
}

/// [`select`] plus its [`SelectionStats`] work counters.
pub fn select_counted(sets: &InfluenceSets, k: usize) -> (Solution, SelectionStats) {
    select_counted_model(sets, k, &Model::Cumulative)
}

/// [`select_counted`] under an arbitrary (monotone submodular) competition
/// model: the same rescan loop with `model`'s per-class contributions in
/// the canonical gain walk.
pub fn select_counted_model<M: CompetitionModel>(
    sets: &InfluenceSets,
    k: usize,
    model: &M,
) -> (Solution, SelectionStats) {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    let mut covered = Bitset::new(sets.n_users());
    let mut taken = vec![false; n];
    let mut scratch = ClassScratch::new(sets);
    let mut stats = SelectionStats::default();
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    for round in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (c, &already) in taken.iter().enumerate() {
            if already {
                continue;
            }
            let gain = scratch.marginal_gain(sets, c, &covered, model);
            stats.gain_evals += 1;
            let len = sets.omega(c).len() as u64;
            stats.users_scanned += len;
            if round > 0 {
                stats.users_rescanned += len;
            }
            match best {
                // Strict `>` keeps the smallest id on ties.
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        // lint:allow(panic-path): the constructor validates k <= n, so an untaken candidate always remains
        let (c, gain) = best.expect("k <= n guarantees a candidate remains");
        taken[c] = true;
        // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
        selected.push(c as u32);
        gains.push(gain);
        total += gain;
        for &o in sets.omega(c) {
            covered.insert(o);
        }
    }

    stats.covered_users = covered.count_ones() as u64;
    (
        Solution {
            selected,
            marginal_gains: gains,
            cinf: total,
        },
        stats,
    )
}

/// Max-heap entry shared by the lazy selectors: orders by gain, then by
/// *smaller* candidate id, then by *newer* version — so on equal gains the
/// smallest id pops first (the shared tie-break) and a candidate's current
/// entry pops before its stale ones.
#[derive(Debug, PartialEq)]
pub(crate) struct Entry {
    pub(crate) gain: f64,
    pub(crate) cand: u32,
    pub(crate) version: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.cand.cmp(&self.cand))
            .then_with(|| self.version.cmp(&other.version))
    }
}

/// CELF lazy greedy: identical output to [`select`], fewer re-evaluations.
pub fn select_lazy(sets: &InfluenceSets, k: usize) -> Solution {
    select_lazy_counted(sets, k, 1).0
}

/// [`select_lazy`] with the initial heap built across `threads` workers
/// (`parallel::map_items`, stitched in candidate order, so the heap
/// contents — and therefore the output — stay bit-identical to serial).
///
/// # Panics
/// Panics when `threads == 0`.
pub fn select_lazy_threaded(sets: &InfluenceSets, k: usize, threads: usize) -> Solution {
    select_lazy_counted(sets, k, threads).0
}

/// [`select_lazy_threaded`] plus its [`SelectionStats`] work counters.
pub fn select_lazy_counted(
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
) -> (Solution, SelectionStats) {
    select_lazy_counted_model(sets, k, threads, &Model::Cumulative)
}

/// [`select_lazy_counted`] under an arbitrary competition model. CELF's
/// pruning argument (a stale cached gain upper-bounds the fresh one) is
/// exactly submodularity, so the model **must** be monotone submodular —
/// the router guarantees it.
pub fn select_lazy_counted_model<M: CompetitionModel + Sync>(
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
    model: &M,
) -> (Solution, SelectionStats) {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert!(threads >= 1, "need at least one worker thread");
    let n_classes = sets.n_weight_classes();
    let mut covered = Bitset::new(sets.n_users());
    let mut stats = SelectionStats::default();

    // The CELF seed: every candidate's full cinf. The per-item evaluations
    // are independent, so they fan out; `map_items` stitches them back in
    // candidate order and the heap is built from the exact same entries a
    // serial pass would produce.
    let initial: Vec<f64> =
        crate::parallel::map_items(n, threads, |c| canonical_cinf(sets, c, n_classes, model));
    stats.gain_evals += n as u64;
    stats.users_scanned += sets.total_influences() as u64;
    stats.heap_pushes += n as u64;
    let mut heap: BinaryHeap<Entry> = initial
        .into_iter()
        .enumerate()
        .map(|(c, gain)| Entry {
            gain,
            // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
            cand: c as u32,
            version: 0,
        })
        .collect();

    let mut scratch = ClassScratch::new(sets);
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    // lint:allow(narrowing-cast): k <= n_candidates, which fits the u32 id space
    for round in 1..=k as u32 {
        loop {
            // lint:allow(panic-path): each untaken candidate keeps one entry in the heap and k <= n is validated
            let top = heap.pop().expect("heap cannot be empty while k <= n");
            if top.version == round - 1 {
                // Fresh enough: by submodularity no stale entry below can
                // exceed it, and any equal-gain fresh entry with a smaller
                // id would have sorted above it.
                selected.push(top.cand);
                gains.push(top.gain);
                total += top.gain;
                for &o in sets.omega(top.cand as usize) {
                    covered.insert(o);
                }
                break;
            }
            let fresh = scratch.marginal_gain(sets, top.cand as usize, &covered, model);
            stats.gain_evals += 1;
            let len = sets.omega(top.cand as usize).len() as u64;
            stats.users_scanned += len;
            stats.users_rescanned += len;
            stats.heap_pushes += 1;
            heap.push(Entry {
                gain: fresh,
                cand: top.cand,
                version: round - 1,
            });
        }
    }

    stats.covered_users = covered.count_ones() as u64;
    (
        Solution {
            selected,
            marginal_gains: gains,
            cinf: total,
        },
        stats,
    )
}

/// Decremental greedy over the inverted CSR: identical output to
/// [`select`] and [`select_lazy`], with gain maintenance instead of
/// re-evaluation.
///
/// Each candidate keeps `counts[w] = #{uncovered o ∈ Ω_c : |F_o| = w}`.
/// When a candidate is selected, only its *newly covered* users' inverted
/// lists are walked: each decrement fixes one affected candidate's class
/// count exactly (integer arithmetic — no drift), and each affected
/// candidate re-materialises its canonical gain once per round. A
/// gain-ordered lazy-bucket heap (entries invalidated by a per-candidate
/// version, the current version re-pushed on every update) replaces the
/// per-round argmax, so a round costs `O(Σ_{new o} |inv(o)| + touched·(W +
/// log n))` — and the decrement total over all `k` rounds never exceeds one
/// pass over the inverted CSR.
pub fn select_decremental(sets: &InfluenceSets, k: usize) -> Solution {
    select_decremental_counted(sets, k, 1).0
}

/// [`select_decremental`] with the inverted CSR and the initial class
/// counts built across `threads` workers (chunked by candidate, stitched in
/// chunk order — bit-identical for any thread count).
///
/// # Panics
/// Panics when `threads == 0`.
pub fn select_decremental_threaded(sets: &InfluenceSets, k: usize, threads: usize) -> Solution {
    select_decremental_counted(sets, k, threads).0
}

/// [`select_decremental_threaded`] plus its [`SelectionStats`] counters.
pub fn select_decremental_counted(
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
) -> (Solution, SelectionStats) {
    select_decremental_counted_model(sets, k, threads, &Model::Cumulative)
}

/// [`select_decremental_counted`] under an arbitrary (monotone submodular)
/// competition model. The maintained state is the per-class integer count
/// matrix — model-independent — so only the two gain materialisation sites
/// (heap seed, refresh) change.
pub fn select_decremental_counted_model<M: CompetitionModel>(
    sets: &InfluenceSets,
    k: usize,
    threads: usize,
    model: &M,
) -> (Solution, SelectionStats) {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert!(threads >= 1, "need at least one worker thread");

    let inverted = InvertedIndex::build(sets, threads);

    // Per-candidate weight-class counts, flattened row-major. Built by
    // candidate chunks; stitching the chunk outputs in order reproduces the
    // serial layout exactly.
    let n_classes = sets.n_weight_classes();
    let counts: Vec<u32> = crate::parallel::map_chunks(n, threads, |range| {
        let mut part = vec![0u32; range.len() * n_classes];
        for (i, c) in range.enumerate() {
            let row = &mut part[i * n_classes..(i + 1) * n_classes];
            for &o in sets.omega(c) {
                row[sets.f_count[o as usize] as usize] += 1;
            }
        }
        part
    })
    .concat();

    let (solution, mut stats) =
        select_decremental_seeded(sets, &inverted, counts, n_classes, k, model);
    stats.users_scanned += sets.total_influences() as u64;
    (solution, stats)
}

/// The decremental selection loop over **prebuilt** parts: the inverted CSR
/// and an externally maintained per-candidate weight-class count matrix
/// (row-major, `n_classes` stride, exactly what [`select_decremental_counted`]
/// builds from scratch). This is the entry point of the incremental
/// [`crate::update::UpdateEngine`]: after events patched `counts` in place, a
/// followup solve seeds the heap directly from the patched matrix and never
/// re-scans the forward CSR. Trailing all-zero columns beyond
/// `sets.n_weight_classes()` are harmless — [`canonical_gain_model`] skips empty
/// classes, so the gains stay bit-identical to the canonical-width matrix.
pub(crate) fn select_decremental_seeded<M: CompetitionModel>(
    sets: &InfluenceSets,
    inverted: &InvertedIndex,
    mut counts: Vec<u32>,
    n_classes: usize,
    k: usize,
    model: &M,
) -> (Solution, SelectionStats) {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert_eq!(counts.len(), n * n_classes, "counts matrix shape mismatch");
    let mut stats = SelectionStats {
        inverted_entries: inverted.len() as u64,
        ..SelectionStats::default()
    };

    // Seed the lazy-bucket heap with every candidate's canonical cinf.
    let mut version = vec![0u32; n];
    let mut heap: BinaryHeap<Entry> = (0..n)
        .map(|c| Entry {
            gain: canonical_gain_model(&counts[c * n_classes..(c + 1) * n_classes], model),
            // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
            cand: c as u32,
            version: 0,
        })
        .collect();
    stats.gain_evals += n as u64;
    stats.heap_pushes += n as u64;

    let mut covered = Bitset::new(sets.n_users());
    let mut taken = vec![false; n];
    // Candidates whose counts changed this round, deduplicated by stamp.
    let mut touched: Vec<u32> = Vec::new();
    let mut stamp = vec![u32::MAX; n];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    // lint:allow(narrowing-cast): k <= n_candidates, which fits the u32 id space
    for round in 0..k as u32 {
        // Pop until the entry is current. Every untaken candidate always
        // has exactly one entry carrying its latest version (seeded above,
        // re-pushed on every update), so the first current entry is the
        // true maximum under the shared (gain, smaller-id) order.
        let (c, gain) = loop {
            // lint:allow(panic-path): every untaken candidate re-pushes its current-version entry before this pop
            let top = heap.pop().expect("a current entry exists per candidate");
            let c = top.cand as usize;
            if taken[c] || top.version != version[c] {
                continue;
            }
            break (c, top.gain);
        };
        taken[c] = true;
        // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
        selected.push(c as u32);
        gains.push(gain);
        total += gain;

        // Decrement phase: each newly covered user tells exactly the
        // candidates that lose it (its inverted list) which class count to
        // drop. Already-covered users were removed in an earlier round.
        touched.clear();
        for &o in sets.omega(c) {
            if covered.contains(o) {
                continue;
            }
            covered.insert(o);
            let w = sets.f_count[o as usize] as usize;
            for &c2 in inverted.candidates_of(o) {
                let c2u = c2 as usize;
                if taken[c2u] {
                    continue;
                }
                counts[c2u * n_classes + w] -= 1;
                stats.gain_updates += 1;
                if stamp[c2u] != round {
                    stamp[c2u] = round;
                    touched.push(c2);
                }
            }
        }
        // Refresh phase: one canonical re-materialisation and one heap
        // push per affected candidate; older entries die by version.
        for &c2 in &touched {
            let c2u = c2 as usize;
            version[c2u] += 1;
            heap.push(Entry {
                gain: canonical_gain_model(&counts[c2u * n_classes..(c2u + 1) * n_classes], model),
                cand: c2,
                version: version[c2u],
            });
            stats.gain_evals += 1;
            stats.heap_pushes += 1;
        }
    }

    stats.covered_users = covered.count_ones() as u64;
    (
        Solution {
            selected,
            marginal_gains: gains,
            cinf: total,
        },
        stats,
    )
}

/// Greedy selection under per-user **demand weights**: user `o` is worth
/// `demand[o] / (|F_o| + 1)` (spending power, visit frequency, or any other
/// business prior scaling the evenly-split competition weight). With unit
/// demands this selects the same sites as [`select`] (gains may differ in
/// the last bit: arbitrary demands do not bucket into classes, so this
/// selector sums per user rather than per class).
pub fn select_with_demand(sets: &InfluenceSets, demand: &[f64], k: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert_eq!(demand.len(), sets.n_users(), "one demand weight per user");
    assert!(
        demand.iter().all(|&d| d >= 0.0),
        "demands must be non-negative"
    );
    let mut covered = Bitset::new(sets.n_users());
    let mut taken = vec![false; n];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (c, &already) in taken.iter().enumerate() {
            if already {
                continue;
            }
            let gain: f64 = sets
                .omega(c)
                .iter()
                .filter(|&&o| !covered.contains(o))
                .map(|&o| demand[o as usize] * sets.weight(o))
                // lint:allow(float-accum): serial scan over Omega(c) in fixed ascending user order; never split across threads
                .sum();
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        // lint:allow(panic-path): the constructor validates k <= n, so an untaken candidate always remains
        let (c, gain) = best.expect("k <= n");
        taken[c] = true;
        // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
        selected.push(c as u32);
        gains.push(gain);
        total += gain;
        for &o in sets.omega(c) {
            covered.insert(o);
        }
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Examples 1/3/4).
    fn paper_sets() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    /// All selectors on the same instance, as (name, solution) pairs.
    fn all_selectors(sets: &InfluenceSets, k: usize) -> Vec<(&'static str, Solution)> {
        vec![
            ("rescan", select(sets, k)),
            ("celf", select_lazy(sets, k)),
            ("celf-t4", select_lazy_threaded(sets, k, 4)),
            ("decremental", select_decremental(sets, k)),
            ("decremental-t4", select_decremental_threaded(sets, k, 4)),
        ]
    }

    #[test]
    fn example4_greedy_trace() {
        // Paper Example 4: first pick c₃ (cinf 3/2) and remove {o₁, o₃};
        // in round two c₂ retains o₂, o₄ (1/3 + 1/2 = 5/6) and beats c₁,
        // so the final result is {c₃, c₂}.
        let s = paper_sets();
        let sol = select(&s, 2);
        assert_eq!(sol.selected, vec![2, 1]);
        assert!((sol.marginal_gains[0] - 1.5).abs() < 1e-12);
        assert!((sol.marginal_gains[1] - 5.0 / 6.0).abs() < 1e-12);
        assert!((sol.cinf - (1.5 + 5.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn all_selectors_match_on_paper_example() {
        let s = paper_sets();
        let reference = select(&s, 2);
        for (name, got) in all_selectors(&s, 2) {
            assert_eq!(reference.selected, got.selected, "{name}");
            assert_eq!(reference.cinf.to_bits(), got.cinf.to_bits(), "{name}");
        }
    }

    #[test]
    fn all_selectors_bit_identical_on_many_random_instances() {
        // Deterministic pseudo-random instances exercising tie cases.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..50 {
            let n_users = 1 + (next() % 30) as usize;
            let n_cands = 1 + (next() % 12) as usize;
            let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 4) as u32).collect();
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c, f_count);
            let k = 1 + (next() as usize % n_cands);
            let reference = select(&sets, k);
            for (name, got) in all_selectors(&sets, k) {
                assert_eq!(reference.selected, got.selected, "{name} k={k}");
                let want_bits: Vec<u64> = reference
                    .marginal_gains
                    .iter()
                    .map(|g| g.to_bits())
                    .collect();
                let got_bits: Vec<u64> = got.marginal_gains.iter().map(|g| g.to_bits()).collect();
                assert_eq!(want_bits, got_bits, "{name} gains k={k}");
                assert_eq!(reference.cinf.to_bits(), got.cinf.to_bits(), "{name} k={k}");
            }
        }
    }

    #[test]
    fn decremental_stats_are_thread_count_invariant() {
        let s = paper_sets();
        let (_, want) = select_decremental_counted(&s, 3, 1);
        for threads in [2usize, 4, 7] {
            let (_, got) = select_decremental_counted(&s, 3, threads);
            assert_eq!(want, got, "threads={threads}");
        }
        let (_, lazy1) = select_lazy_counted(&s, 3, 1);
        let (_, lazy4) = select_lazy_counted(&s, 3, 4);
        assert_eq!(lazy1, lazy4);
    }

    #[test]
    fn decremental_update_work_is_bounded_by_one_inverted_pass() {
        let s = paper_sets();
        let (_, stats) = select_decremental_counted(&s, 3, 1);
        assert!(stats.gain_updates <= stats.inverted_entries);
        assert_eq!(stats.inverted_entries, s.total_influences() as u64);
        assert_eq!(stats.users_rescanned, 0);
        assert_eq!(stats.covered_users, 4);
    }

    #[test]
    fn gains_are_non_increasing() {
        let s = paper_sets();
        let sol = select(&s, 3);
        for w in sol.marginal_gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "greedy gains must be non-increasing");
        }
    }

    #[test]
    fn covers_empty_candidates_gracefully() {
        let s = InfluenceSets::new(vec![vec![], vec![0]], vec![0]);
        for (name, sol) in all_selectors(&s, 2) {
            assert_eq!(sol.selected_sorted(), vec![0, 1], "{name}");
            assert!((sol.cinf - 1.0).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn unit_demand_matches_plain_greedy() {
        let s = paper_sets();
        let a = select(&s, 2);
        let b = select_with_demand(&s, &[1.0; 4], 2);
        assert_eq!(a.selected, b.selected);
        assert!((a.cinf - b.cinf).abs() < 1e-12);
    }

    #[test]
    fn demand_steers_the_pick() {
        // Make user 3 (covered only by c1) enormously valuable.
        let s = paper_sets();
        let sol = select_with_demand(&s, &[1.0, 1.0, 1.0, 100.0], 1);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    #[should_panic(expected = "one demand weight per user")]
    fn demand_length_mismatch_panics() {
        select_with_demand(&paper_sets(), &[1.0, 1.0], 1);
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        // Two identical candidates: every implementation must pick id 0.
        let s = InfluenceSets::new(vec![vec![0], vec![0]], vec![0]);
        for (name, sol) in all_selectors(&s, 1) {
            assert_eq!(sol.selected, vec![0], "{name}");
        }
    }
}
