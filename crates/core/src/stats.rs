use crate::Solution;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters over user–facility *pairs* classified by each pruning rule, plus
/// the exact-verification effort. These back the paper's pruning-effect
/// figures (Fig. 7, Fig. 8) and the verification-cost plots
/// (Fig. 15(b)/16(b)).
///
/// A "pair" is one (abstract facility, user) influence relationship. For
/// every pair exactly one of the following holds after the pruning phase:
/// decided-influenced (IS or IA), decided-not (NIR or NIB), or verified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Total pairs considered: `(|C| + |F|)·|Ω|` (facility side restricted
    /// to users that matter, see Algorithm 1 line 10 / Algorithm 2).
    pub pairs_total: u64,
    /// Pairs decided *influenced* by the IS rule (Lemma 2).
    pub is_decided: u64,
    /// Pairs decided *not influenced* by the NIR rule (Lemma 3).
    pub nir_decided: u64,
    /// Pairs decided *influenced* by the IA region (Corollary 1).
    pub ia_decided: u64,
    /// Pairs decided *not influenced* by the NIB region (Corollary 2).
    pub nib_decided: u64,
    /// Facility–user pairs skipped because the user is influenced by no
    /// candidate (Algorithm 1 line 10): the user's weight is never read, so
    /// its `F_o` is irrelevant to the objective.
    pub irrelevant: u64,
    /// Pairs that reached exact verification (Definition 2).
    pub verified: u64,
    /// Per-position probability evaluations performed during verification
    /// (with early stopping).
    pub prob_evals: u64,
    /// Position blocks whose contents were never read because block-level
    /// distance bounds decided the pair first (blocked kernel only; 0 when
    /// `block_size == 0`).
    pub blocks_bounded_out: u64,
    /// Position blocks opened for in-block lane evaluation (blocked kernel
    /// only). Users that fell back to the exact pass have their opened
    /// blocks counted twice (once per pass).
    pub blocks_opened: u64,
    /// Verified pairs whose fast-PF walk ended with the threshold inside
    /// the error band and were re-decided on the exact `exp` path. Always 0
    /// under `--pf-exact` or the plain kernel. The fast-path hit rate is
    /// `1 − pf_fallbacks / verified`.
    pub pf_fallbacks: u64,
}

impl PruneStats {
    /// Fraction of pairs decided without verification.
    pub fn pruned_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        1.0 - self.verified as f64 / self.pairs_total as f64
    }

    /// Fraction of pairs decided by the IS rule.
    pub fn is_fraction(&self) -> f64 {
        safe_div(self.is_decided, self.pairs_total)
    }

    /// Fraction of pairs decided by the NIR rule.
    pub fn nir_fraction(&self) -> f64 {
        safe_div(self.nir_decided, self.pairs_total)
    }

    /// Fraction of pairs decided by the IA region.
    pub fn ia_fraction(&self) -> f64 {
        safe_div(self.ia_decided, self.pairs_total)
    }

    /// Fraction of pairs decided by the NIB region.
    pub fn nib_fraction(&self) -> f64 {
        safe_div(self.nib_decided, self.pairs_total)
    }
}

fn safe_div(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Counters over the greedy **selection** phase, in the same spirit as
/// [`PruneStats`] for the influence phases: every selector counts the work
/// it performs in deterministic units, and — like the influence counters —
/// the values are invariant under the worker-thread count (asserted in
/// `tests/selector_equivalence.rs`), so they are comparable across machines.
///
/// The unit conventions, per selector:
///
/// * **rescan** (`greedy::select`) and **CELF** (`greedy::select_lazy`)
///   evaluate gains by walking forward-CSR `Ω_c` slices: `users_scanned`
///   counts every entry visited, `users_rescanned` the subset visited
///   *again* after a candidate's first evaluation (rounds ≥ 2 for rescan,
///   re-evaluations for CELF) — the redundant work decremental maintenance
///   eliminates.
/// * **decremental** (`greedy::select_decremental`) walks each newly
///   covered user's inverted list exactly once: `gain_updates` counts the
///   per-weight-class count decrements, which over all `k` rounds are
///   bounded by `inverted_entries` (one pass over the inverted CSR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Marginal gains materialized from weight-class counts (initial pass
    /// included).
    pub gain_evals: u64,
    /// Forward-CSR `Ω_c` entries visited while evaluating gains.
    pub users_scanned: u64,
    /// Forward-CSR entries visited again after a candidate's first
    /// evaluation; 0 for the decremental selector.
    pub users_rescanned: u64,
    /// Per-weight-class count decrements over the inverted CSR
    /// (decremental selector only).
    pub gain_updates: u64,
    /// Entries in the inverted user → candidate CSR (decremental only).
    pub inverted_entries: u64,
    /// Entries pushed into the selector's max-heap (lazy selectors only).
    pub heap_pushes: u64,
    /// Users covered by the selected set (`covered.count_ones()`).
    pub covered_users: u64,
}

/// Wall-clock time per algorithm phase.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Index construction (IQuad-tree and/or R-trees).
    pub indexing: Duration,
    /// Pruning-rule application.
    pub pruning: Duration,
    /// Exact verification of undecided pairs.
    pub verification: Duration,
    /// Greedy candidate selection.
    pub selection: Duration,
}

impl PhaseTimes {
    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.indexing + self.pruning + self.verification + self.selection
    }
}

/// Everything an algorithm run reports: the solution, the pruning counters,
/// the selection counters, and per-phase timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The selected candidate set and its influence.
    pub solution: Solution,
    /// Pruning/verification counters.
    pub stats: PruneStats,
    /// Selection-phase counters.
    pub selection: SelectionStats,
    /// Per-phase wall-clock times.
    pub times: PhaseTimes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_consistent() {
        let s = PruneStats {
            pairs_total: 100,
            is_decided: 30,
            nir_decided: 50,
            ia_decided: 0,
            nib_decided: 5,
            irrelevant: 0,
            verified: 15,
            prob_evals: 123,
            blocks_bounded_out: 4,
            blocks_opened: 2,
            pf_fallbacks: 1,
        };
        assert!((s.pruned_fraction() - 0.85).abs() < 1e-12);
        assert!((s.is_fraction() - 0.30).abs() < 1e-12);
        assert!((s.nir_fraction() - 0.50).abs() < 1e-12);
        assert!((s.nib_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_totals_do_not_divide_by_zero() {
        let s = PruneStats::default();
        assert_eq!(s.pruned_fraction(), 0.0);
        assert_eq!(s.is_fraction(), 0.0);
    }

    #[test]
    fn phase_times_total() {
        let t = PhaseTimes {
            indexing: Duration::from_millis(10),
            pruning: Duration::from_millis(20),
            verification: Duration::from_millis(30),
            selection: Duration::from_millis(40),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
    }
}
