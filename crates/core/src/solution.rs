use serde::{Deserialize, Serialize};

/// The result of an MC²LS algorithm: the `k` selected candidates in pick
/// order with their marginal gains, and the achieved competitive collective
/// influence `cinf(G)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Selected candidate ids, in greedy pick order.
    pub selected: Vec<u32>,
    /// Marginal competitive influence gained by each pick (same order).
    pub marginal_gains: Vec<f64>,
    /// Total `cinf(G)` (equals the sum of marginal gains).
    pub cinf: f64,
}

impl Solution {
    /// The selected set in canonical (sorted) order, for comparing results
    /// across algorithms independently of pick order.
    pub fn selected_sorted(&self) -> Vec<u32> {
        let mut v = self.selected.clone();
        v.sort_unstable();
        v
    }

    /// True when two solutions select the same candidate set and achieve the
    /// same influence (within `1e-9` absolute tolerance).
    pub fn equivalent(&self, other: &Solution) -> bool {
        self.selected_sorted() == other.selected_sorted() && (self.cinf - other.cinf).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_view_and_equivalence() {
        let a = Solution {
            selected: vec![3, 1],
            marginal_gains: vec![2.0, 1.0],
            cinf: 3.0,
        };
        let b = Solution {
            selected: vec![1, 3],
            marginal_gains: vec![1.5, 1.5],
            cinf: 3.0,
        };
        assert_eq!(a.selected_sorted(), vec![1, 3]);
        assert!(a.equivalent(&b));
        let c = Solution {
            selected: vec![1, 2],
            marginal_gains: vec![1.5, 1.5],
            cinf: 3.0,
        };
        assert!(!a.equivalent(&c));
    }
}
