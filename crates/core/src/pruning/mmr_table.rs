use mc2ls_influence::{min_max_radius, ProbabilityFunction};

/// Memoised `mMR(τ, r)` radii for every position count `r ∈ 0..=r_max`.
///
/// Users share few distinct `r` values and both the IA/NIB regions and the
/// NIR bound query `mMR` per user, so the radii are computed once per
/// instance. `None` entries mean a user with that many positions can never
/// be influenced under `(PF, τ)`.
#[derive(Debug, Clone)]
pub struct MmrTable {
    by_r: Vec<Option<f64>>,
}

impl MmrTable {
    /// Builds the table for `r ∈ 0..=r_max`.
    pub fn build<PF: ProbabilityFunction + ?Sized>(pf: &PF, tau: f64, r_max: usize) -> Self {
        let by_r = (0..=r_max).map(|r| min_max_radius(pf, tau, r)).collect();
        MmrTable { by_r }
    }

    /// `mMR(τ, r)`; `None` when unreachable. `r` beyond `r_max` panics —
    /// the table is always built from the dataset's true maximum.
    #[inline]
    pub fn get(&self, r: usize) -> Option<f64> {
        self.by_r[r]
    }

    /// The largest defined radius (equals `NIR` when any entry is defined).
    pub fn max_radius(&self) -> Option<f64> {
        self.by_r.iter().flatten().copied().fold(None, |acc, x| {
            Some(match acc {
                Some(a) if a >= x => a,
                _ => x,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::{non_influence_radius, Sigmoid};

    #[test]
    fn table_matches_direct_computation() {
        let pf = Sigmoid::paper_default();
        let t = MmrTable::build(&pf, 0.7, 20);
        for r in 0..=20 {
            assert_eq!(t.get(r), min_max_radius(&pf, 0.7, r));
        }
    }

    #[test]
    fn max_radius_equals_nir() {
        let pf = Sigmoid::paper_default();
        let t = MmrTable::build(&pf, 0.5, 30);
        let nir = non_influence_radius(&pf, 0.5, 30);
        assert_eq!(t.max_radius(), nir);
    }

    #[test]
    fn unreachable_rs_are_none() {
        let pf = Sigmoid::paper_default();
        let t = MmrTable::build(&pf, 0.7, 5);
        assert!(t.get(0).is_none());
        assert!(t.get(1).is_none()); // PF(0)=0.5 < 0.7
        assert!(t.get(2).is_some());
    }

    #[test]
    fn all_unreachable_gives_no_max() {
        let pf = Sigmoid::new(0.1);
        // τ=0.9 unreachable even with r=2 positions at distance 0:
        // 1-(1-0.1)^2 = 0.19 < 0.9.
        let t = MmrTable::build(&pf, 0.9, 2);
        assert!(t.max_radius().is_none());
    }
}
