//! The four pruning regions/rules of the paper.
//!
//! Two *classical* facility-pruning regions from PINOCCHIO [13], used by the
//! Adapted k-CIFP baseline (Algorithm 1) and optionally layered onto the
//! IQuad-tree solution:
//!
//! * **IA (Influence Arcs)** — [`ia_contains`]: an abstract facility whose
//!   distance to the *farthest* corner of a user's MBR is at most
//!   `mMR(τ, r)` certainly influences the user (every position sits inside
//!   the facility's influence circle; Corollary 1).
//! * **NIB (Non-Influence Boundary)** — [`nib_contains`]: a facility whose
//!   distance to the *nearest* point of the MBR exceeds `mMR(τ, r)` cannot
//!   influence the user (no position can be inside the influence circle;
//!   Corollary 2).
//!
//! The paper's *novel* user-pruning rules — **IS** (Lemma 2) and **NIR**
//! (Lemma 3) — live inside [`mc2ls_index::IQuadTree`], because they are
//! defined on the index's squares; this module adds [`MmrTable`], the
//! shared per-`r` memo of `mMR(τ, r)` radii that both rule families need.

mod mmr_table;

pub use mmr_table::MmrTable;

use mc2ls_geo::{Circle, Point, Rect};

/// True when `v` lies in the user's IA region: `max_dist(v, MBR) ≤ mMR`.
///
/// This is exact for the corner-arc region of [13]: all positions lie in the
/// MBR, and the farthest-corner test is equivalent to "the influence circle
/// `φ(v, mMR)` covers the MBR".
#[inline]
pub fn ia_contains(user_mbr: &Rect, v: &Point, mmr: f64) -> bool {
    user_mbr.max_distance_sq(v) <= mmr * mmr
}

/// True when `v` lies in the user's NIB region: `min_dist(v, MBR) ≤ mMR`.
/// Facilities *outside* the region are certainly non-influencing.
#[inline]
pub fn nib_contains(user_mbr: &Rect, v: &Point, mmr: f64) -> bool {
    user_mbr.min_distance_sq(v) <= mmr * mmr
}

/// The axis-aligned bounding rectangle of the NIB region (the MBR inflated
/// by `mMR`), used as the R-tree range-query window; hits are then filtered
/// exactly with [`nib_contains`].
#[inline]
pub fn nib_query_rect(user_mbr: &Rect, mmr: f64) -> Rect {
    user_mbr.inflate(mmr)
}

/// A circle certainly contained in the IA region (centred on the MBR centre
/// with radius `mMR − diagonal/2`), or `None` when the MBR is too large for
/// any such circle. Useful as a cheap query window; exactness is restored
/// by testing hits with [`ia_contains`].
pub fn ia_inner_circle(user_mbr: &Rect, mmr: f64) -> Option<Circle> {
    let r = mmr - user_mbr.diagonal() * 0.5;
    if r <= 0.0 {
        None
    } else {
        Some(Circle::new(user_mbr.center(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::{cumulative_probability, min_max_radius, MovingUser, Sigmoid};

    fn user() -> MovingUser {
        MovingUser::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.2),
            Point::new(0.1, 0.5),
            Point::new(0.3, 0.3),
        ])
    }

    #[test]
    fn ia_implies_influence() {
        let u = user();
        let pf = Sigmoid::paper_default();
        let tau = 0.6;
        let mmr = min_max_radius(&pf, tau, u.len()).unwrap();
        // Scan a grid of facility placements; every IA hit must influence.
        for i in -20..20 {
            for j in -20..20 {
                let v = Point::new(i as f64 * 0.1, j as f64 * 0.1);
                if ia_contains(u.mbr(), &v, mmr) {
                    let pr = cumulative_probability(&pf, &v, u.positions());
                    assert!(pr >= tau - 1e-9, "IA admitted v={v:?} with pr={pr}");
                }
            }
        }
    }

    #[test]
    fn outside_nib_implies_no_influence() {
        let u = user();
        let pf = Sigmoid::paper_default();
        let tau = 0.6;
        let mmr = min_max_radius(&pf, tau, u.len()).unwrap();
        for i in -30..30 {
            for j in -30..30 {
                let v = Point::new(i as f64 * 0.2, j as f64 * 0.2);
                if !nib_contains(u.mbr(), &v, mmr) {
                    let pr = cumulative_probability(&pf, &v, u.positions());
                    assert!(pr < tau, "NIB failed to exclude v={v:?} with pr={pr}");
                }
            }
        }
    }

    #[test]
    fn ia_region_is_inside_nib_region() {
        let u = user();
        let mmr = 1.0;
        for i in -15..15 {
            for j in -15..15 {
                let v = Point::new(i as f64 * 0.15, j as f64 * 0.15);
                if ia_contains(u.mbr(), &v, mmr) {
                    assert!(nib_contains(u.mbr(), &v, mmr));
                }
            }
        }
    }

    #[test]
    fn inner_circle_is_subset_of_ia() {
        let u = user();
        let mmr = 1.2;
        let circle = ia_inner_circle(u.mbr(), mmr).unwrap();
        for i in -10..10 {
            for j in -10..10 {
                let v = Point::new(i as f64 * 0.1, j as f64 * 0.1);
                if circle.contains(&v) {
                    assert!(ia_contains(u.mbr(), &v, mmr));
                }
            }
        }
    }

    #[test]
    fn inner_circle_none_for_large_mbr() {
        let wide = MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)]);
        assert!(ia_inner_circle(wide.mbr(), 1.0).is_none());
    }

    #[test]
    fn nib_query_rect_covers_nib_region() {
        let u = user();
        let mmr = 0.8;
        let rect = nib_query_rect(u.mbr(), mmr);
        for i in -20..20 {
            for j in -20..20 {
                let v = Point::new(i as f64 * 0.1, j as f64 * 0.1);
                if nib_contains(u.mbr(), &v, mmr) {
                    assert!(rect.contains(&v));
                }
            }
        }
    }
}
