//! A fixed-capacity bitset over `u64` words.
//!
//! The greedy selection phase keeps a `covered: Vec<bool>` per run; with
//! hundreds of thousands of users that is one byte per user touched in a
//! tight inner loop. Packing 64 users per word cuts the working set 8× —
//! the whole set often fits in L1/L2 — and `clear` becomes a short
//! `memset`.

/// A fixed-capacity set of `u32` indices packed 64 per `u64` word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (one past the largest admissible index).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts index `i`.
    ///
    /// # Panics
    /// Panics when `i >= len` (as slice indexing would).
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!((i as usize) < self.len, "index {i} out of range");
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Whether index `i` is present.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!((i as usize) < self.len, "index {i} out of range");
        self.words[(i / 64) as usize] >> (i % 64) & 1 != 0
    }

    /// Number of indices present.
    pub fn count(&self) -> usize {
        self.count_ones()
    }

    /// Number of indices present (one `popcnt` per word).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the present indices in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: self.words.iter(),
            base: 0,
            current: 0,
        }
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Structural sanitizer: the word array matches the capacity and no
    /// bit beyond `len` is set (a stray tail bit would corrupt
    /// `count_ones` and `iter_ones`). Always callable; the body compiles
    /// away in release builds.
    ///
    /// # Panics
    /// Panics (debug builds only) when either invariant is broken.
    pub fn validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.words.len(),
                self.len.div_ceil(64),
                "word count does not match capacity"
            );
            let tail = self.len % 64;
            if tail != 0 {
                let last = self.words[self.words.len() - 1];
                assert_eq!(last >> tail, 0, "bit set beyond the capacity");
            }
        }
    }
}

/// Iterator over the set indices of a [`Bitset`], ascending. Each word is
/// drained lowest-bit-first via `trailing_zeros` + clear-lowest-set-bit, so
/// the cost is one iteration per *set* bit plus one per word.
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: std::slice::Iter<'a, u64>,
    base: u32,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some(self.base - 64 + bit);
            }
            self.current = *self.words.next()?;
            self.base += 64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut b = Bitset::new(200);
        assert_eq!(b.len(), 200);
        assert!(!b.is_empty());
        for i in [0u32, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!b.contains(i));
            b.insert(i);
            assert!(b.contains(i));
        }
        assert_eq!(b.count(), 8);
        // Re-inserting is idempotent.
        b.insert(63);
        assert_eq!(b.count(), 8);
        b.clear();
        assert_eq!(b.count(), 0);
        assert!(!b.contains(63));
    }

    #[test]
    fn matches_vec_bool_on_random_ops() {
        let mut seed = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let n = 500usize;
        let mut b = Bitset::new(n);
        let mut v = vec![false; n];
        for _ in 0..2000 {
            let i = (next() % n as u64) as u32;
            b.insert(i);
            v[i as usize] = true;
        }
        for (i, &want) in v.iter().enumerate() {
            assert_eq!(b.contains(i as u32), want, "index {i}");
        }
        assert_eq!(b.count(), v.iter().filter(|&&x| x).count());
    }

    #[test]
    fn zero_capacity_is_fine() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter_ones().next(), None);
    }

    #[test]
    fn count_ones_and_iter_ones_at_word_boundaries() {
        // 63 (last bit of word 0), 64 (first bit of word 1), 65: the
        // boundary cases where a shift or word-index off-by-one would bite.
        for cap in [63usize, 64, 65, 130] {
            let mut b = Bitset::new(cap);
            assert_eq!(b.count_ones(), 0);
            let all: Vec<u32> = (0..cap as u32).collect();
            for &i in &all {
                b.insert(i);
            }
            assert_eq!(b.count_ones(), cap, "cap={cap}");
            assert_eq!(b.iter_ones().collect::<Vec<u32>>(), all, "cap={cap}");
        }
    }

    #[test]
    fn iter_ones_yields_sparse_indices_in_order() {
        let mut b = Bitset::new(200);
        for i in [199u32, 0, 64, 63, 65, 128, 1] {
            b.insert(i);
        }
        assert_eq!(
            b.iter_ones().collect::<Vec<u32>>(),
            vec![0, 1, 63, 64, 65, 128, 199]
        );
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn iter_ones_matches_contains_on_random_sets() {
        let mut seed = 0xA5A5A5A5DEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let n = 777usize;
        let mut b = Bitset::new(n);
        for _ in 0..300 {
            b.insert((next() % n as u64) as u32);
        }
        let via_iter: Vec<u32> = b.iter_ones().collect();
        let via_contains: Vec<u32> = (0..n as u32).filter(|&i| b.contains(i)).collect();
        assert_eq!(via_iter, via_contains);
        assert_eq!(via_iter.len(), b.count_ones());
    }
}
