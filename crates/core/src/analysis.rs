//! Post-solution analysis utilities: the reports a business planner would
//! actually read once the sites are chosen.

use crate::{greedy, InfluenceSets, Solution};
use serde::{Deserialize, Serialize};

/// The diminishing-returns curve: `cinf` of the greedy prefix for every
/// budget `k ∈ 1..=k_max` from a *single* greedy run (prefix-optimal by
/// construction of the greedy).
pub fn coverage_curve(sets: &InfluenceSets, k_max: usize) -> Vec<f64> {
    let sol = greedy::select(sets, k_max.min(sets.n_candidates()));
    sol.marginal_gains
        .iter()
        .scan(0.0, |acc, g| {
            *acc += g;
            Some(*acc)
        })
        .collect()
}

/// Per-site breakdown of a solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteReport {
    /// The candidate id.
    pub candidate: u32,
    /// Users only this site covers within the selected set.
    pub exclusive_users: usize,
    /// Users it shares with at least one other selected site.
    pub shared_users: usize,
    /// Competitive weight captured exclusively (lost if the site closes).
    pub exclusive_weight: f64,
}

/// Analyses each selected site's contribution: how much demand would be
/// lost if that site alone were dropped (its *exclusive* coverage under the
/// evenly-split weights).
pub fn site_reports(sets: &InfluenceSets, solution: &Solution) -> Vec<SiteReport> {
    let mut cover_count = vec![0u32; sets.n_users()];
    for &c in &solution.selected {
        for &o in sets.omega(c as usize) {
            cover_count[o as usize] += 1;
        }
    }
    solution
        .selected
        .iter()
        .map(|&c| {
            let mut exclusive_users = 0;
            let mut shared_users = 0;
            let mut exclusive_weight = 0.0;
            for &o in sets.omega(c as usize) {
                if cover_count[o as usize] == 1 {
                    exclusive_users += 1;
                    exclusive_weight += sets.weight(o);
                } else {
                    shared_users += 1;
                }
            }
            SiteReport {
                candidate: c,
                exclusive_users,
                shared_users,
                exclusive_weight,
            }
        })
        .collect()
}

/// Summary of the demand landscape of an instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DemandSummary {
    /// Users reachable by at least one candidate.
    pub addressable_users: usize,
    /// Total weight if every candidate were opened (the cinf ceiling).
    pub total_addressable_weight: f64,
    /// Users already contested by at least one competitor.
    pub contested_users: usize,
    /// Mean number of competitors per contested user.
    pub mean_competitors: f64,
}

/// Computes the demand landscape from precomputed influence sets.
pub fn demand_summary(sets: &InfluenceSets) -> DemandSummary {
    let all: Vec<u32> = (0..sets.n_candidates() as u32).collect();
    let addressable = sets.omega_of_set(&all);
    let total_addressable_weight: f64 = addressable.iter().map(|&o| sets.weight(o)).sum();
    let contested: Vec<u32> = addressable
        .iter()
        .copied()
        .filter(|&o| sets.f_count[o as usize] > 0)
        .collect();
    let mean_competitors = if contested.is_empty() {
        0.0
    } else {
        contested
            .iter()
            .map(|&o| sets.f_count[o as usize] as f64)
            .sum::<f64>()
            / contested.len() as f64
    };
    DemandSummary {
        addressable_users: addressable.len(),
        total_addressable_weight,
        contested_users: contested.len(),
        mean_competitors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn coverage_curve_is_monotone_and_matches_greedy() {
        let s = sets();
        let curve = coverage_curve(&s, 3);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        let full = greedy::select(&s, 3);
        assert!((curve[2] - full.cinf).abs() < 1e-12);
        // Prefix property: curve[k-1] equals greedy with that k.
        let k2 = greedy::select(&s, 2);
        assert!((curve[1] - k2.cinf).abs() < 1e-12);
    }

    #[test]
    fn site_reports_identify_exclusive_coverage() {
        let s = sets();
        let sol = greedy::select(&s, 2); // {c2, c1}: covers {0,2} and {1,3}
        let reports = site_reports(&s, &sol);
        assert_eq!(reports.len(), 2);
        // Disjoint coverage ⇒ everything exclusive.
        for r in &reports {
            assert_eq!(r.shared_users, 0);
            assert_eq!(r.exclusive_users, 2);
        }
        let total: f64 = reports.iter().map(|r| r.exclusive_weight).sum();
        assert!((total - sol.cinf).abs() < 1e-12);
    }

    #[test]
    fn overlapping_sites_report_shared_users() {
        let s = InfluenceSets::new(vec![vec![0, 1], vec![1, 2]], vec![0, 0, 0]);
        let sol = greedy::select(&s, 2);
        let reports = site_reports(&s, &sol);
        // User 1 is shared between both sites.
        assert!(reports.iter().all(|r| r.shared_users == 1));
        assert!(reports.iter().all(|r| r.exclusive_users == 1));
    }

    #[test]
    fn demand_summary_counts_contestation() {
        let s = sets();
        let d = demand_summary(&s);
        assert_eq!(d.addressable_users, 4);
        assert_eq!(d.contested_users, 3); // users 0, 1, 3 have competitors
        assert!((d.mean_competitors - 4.0 / 3.0).abs() < 1e-12);
        assert!((d.total_addressable_weight - (0.5 + 1.0 / 3.0 + 1.0 + 0.5)).abs() < 1e-12);
    }
}
