use mc2ls_index::setops;

/// The influence relationships an algorithm's pruning + verification phases
/// produce, and everything the greedy selection phase needs:
///
/// * `omega_c[c]` — the sorted users influenced by candidate `c`
///   (Definition 2's `Ω_c`).
/// * `f_count[o]` — `|F_o|`, the number of existing facilities influencing
///   user `o` (Definition 3). The competitive weight of a user is
///   `1/(|F_o|+1)` (Equation 1).
///
/// All MC²LS algorithms in this crate reduce to this structure; since the
/// pruning rules are lossless, every algorithm must produce the same
/// `InfluenceSets` for the same instance — the integration tests rely on
/// exactly that to cross-validate the implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfluenceSets {
    /// Sorted user ids per candidate.
    pub omega_c: Vec<Vec<u32>>,
    /// `|F_o|` per user.
    pub f_count: Vec<u32>,
}

impl InfluenceSets {
    /// Creates the structure, asserting each `omega_c` list is sorted and
    /// in range (debug builds only).
    pub fn new(omega_c: Vec<Vec<u32>>, f_count: Vec<u32>) -> Self {
        #[cfg(debug_assertions)]
        for list in &omega_c {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "omega_c not sorted");
            debug_assert!(
                list.iter().all(|&u| (u as usize) < f_count.len()),
                "user id out of range"
            );
        }
        InfluenceSets { omega_c, f_count }
    }

    /// Number of candidates.
    pub fn n_candidates(&self) -> usize {
        self.omega_c.len()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.f_count.len()
    }

    /// Competitive weight `1/(|F_o|+1)` of user `o`.
    #[inline]
    pub fn weight(&self, o: u32) -> f64 {
        1.0 / (self.f_count[o as usize] as f64 + 1.0)
    }

    /// `cinf(c)` against the full user set (Definition 4).
    pub fn cinf_candidate(&self, c: usize) -> f64 {
        self.omega_c[c].iter().map(|&o| self.weight(o)).sum()
    }

    /// The union `Ω_G` of influenced users over a candidate set (sorted).
    pub fn omega_of_set(&self, set: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &c in set {
            setops::union_into(&mut out, &self.omega_c[c as usize]);
        }
        out
    }

    /// `cinf(G)` for a candidate set (Definition 6): overlapping influence
    /// counts once.
    pub fn cinf_set(&self, set: &[u32]) -> f64 {
        self.omega_of_set(set).iter().map(|&o| self.weight(o)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper (Examples 1, 3, 4):
    /// c₁ → {o₁, o₂}, c₂ → {o₂, o₄}, c₃ → {o₁, o₃};
    /// f₁ → {o₁, o₂}, f₂ → {o₂, o₄}, so |F| counts are
    /// o₁: 1, o₂: 2, o₃: 0, o₄: 1.
    pub(crate) fn paper_example() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn weights_follow_evenly_split_model() {
        let s = paper_example();
        assert!((s.weight(0) - 0.5).abs() < 1e-12);
        assert!((s.weight(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.weight(2) - 1.0).abs() < 1e-12);
        assert!((s.weight(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn example4_candidate_cinf_values() {
        // Paper Example 4: cinf(c₁) = 5/6, cinf(c₂) = 5/6, cinf(c₃) = 3/2.
        let s = paper_example();
        assert!((s.cinf_candidate(0) - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.cinf_candidate(1) - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.cinf_candidate(2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn example3_set_cinf_values() {
        // Paper Example 3: cinf({c₁,c₂}) = 4/3, cinf({c₁,c₃}) = 11/6.
        let s = paper_example();
        assert!((s.cinf_set(&[0, 1]) - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.cinf_set(&[0, 2]) - 11.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn omega_of_set_unions_without_duplicates() {
        let s = paper_example();
        assert_eq!(s.omega_of_set(&[0, 1]), vec![0, 1, 3]);
        assert_eq!(s.omega_of_set(&[0, 2]), vec![0, 1, 2]);
        assert_eq!(s.omega_of_set(&[]), Vec::<u32>::new());
    }

    #[test]
    fn cinf_is_monotone_and_subadditive() {
        let s = paper_example();
        let single = s.cinf_set(&[0]);
        let pair = s.cinf_set(&[0, 1]);
        assert!(pair >= single);
        assert!(pair <= s.cinf_candidate(0) + s.cinf_candidate(1) + 1e-12);
    }
}
