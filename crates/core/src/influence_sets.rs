use crate::Bitset;
use mc2ls_geo::{ByteReader, ByteWriter, CodecError};

/// The influence relationships an algorithm's pruning + verification phases
/// produce, and everything the greedy selection phase needs:
///
/// * `omega(c)` — the sorted users influenced by candidate `c`
///   (Definition 2's `Ω_c`).
/// * `f_count[o]` — `|F_o|`, the number of existing facilities influencing
///   user `o` (Definition 3). The competitive weight of a user is
///   `1/(|F_o|+1)` (Equation 1).
///
/// The per-candidate lists live in one flat **CSR layout**: `user_ids`
/// concatenates every candidate's sorted users, and `offsets[c]..offsets[c+1]`
/// delimits candidate `c`'s slice. Compared to a `Vec<Vec<u32>>`, the greedy
/// selection phase scans candidates back to back over one contiguous
/// allocation — no per-candidate pointer chase, and the whole structure is
/// two `memcpy`s to clone or send across threads.
///
/// All MC²LS algorithms in this crate reduce to this structure; since the
/// pruning rules are lossless, every algorithm must produce the same
/// `InfluenceSets` for the same instance — the integration tests rely on
/// exactly that to cross-validate the implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfluenceSets {
    /// CSR row pointers: candidate `c` owns `user_ids[offsets[c] as usize
    /// .. offsets[c + 1] as usize]`. Always `n_candidates + 1` entries,
    /// starting at 0, non-decreasing.
    offsets: Vec<u32>,
    /// Concatenated sorted user ids of every candidate.
    user_ids: Vec<u32>,
    /// `|F_o|` per user.
    pub f_count: Vec<u32>,
}

impl InfluenceSets {
    /// Creates the structure from nested per-candidate lists (flattened to
    /// CSR internally), asserting each list is sorted and in range (debug
    /// builds only).
    pub fn new(omega_c: Vec<Vec<u32>>, f_count: Vec<u32>) -> Self {
        let mut offsets = Vec::with_capacity(omega_c.len() + 1);
        offsets.push(0u32);
        let total: usize = omega_c.iter().map(Vec::len).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "CSR adjacency length {total} exceeds the u32 offset space"
        );
        let mut user_ids = Vec::with_capacity(total);
        for list in &omega_c {
            user_ids.extend_from_slice(list);
            // lint:allow(narrowing-cast): total adjacency length is asserted to fit u32 above
            offsets.push(user_ids.len() as u32);
        }
        Self::from_csr(offsets, user_ids, f_count)
    }

    /// Creates the structure directly from a CSR layout.
    ///
    /// # Panics
    /// Panics when `offsets` is empty, does not start at 0, or does not end
    /// at `user_ids.len()`. Per-candidate sortedness and id range are
    /// debug-asserted like in [`InfluenceSets::new`].
    pub fn from_csr(offsets: Vec<u32>, user_ids: Vec<u32>, f_count: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets needs a leading 0 entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            offsets[offsets.len() - 1] as usize,
            user_ids.len(),
            "offsets must end at user_ids.len()"
        );
        let sets = InfluenceSets {
            offsets,
            user_ids,
            f_count,
        };
        sets.validate();
        sets
    }

    /// Structural sanitizer: checks every CSR invariant the accessors rely
    /// on. Always callable; the body compiles away in release builds.
    ///
    /// # Panics
    /// Panics (debug builds only) when `offsets` is not non-decreasing, a
    /// per-candidate list is unsorted or holds duplicates, or a user id is
    /// out of the `f_count` range.
    pub fn validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert!(
                self.offsets.windows(2).all(|w| w[0] <= w[1]),
                "offsets not non-decreasing"
            );
            for w in self.offsets.windows(2) {
                let list = &self.user_ids[w[0] as usize..w[1] as usize];
                assert!(list.windows(2).all(|x| x[0] < x[1]), "omega_c not sorted");
                assert!(
                    list.iter().all(|&u| (u as usize) < self.f_count.len()),
                    "user id out of range"
                );
            }
        }
    }

    /// Number of candidates.
    pub fn n_candidates(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.f_count.len()
    }

    /// Sorted users influenced by candidate `c` (Definition 2's `Ω_c`).
    #[inline]
    pub fn omega(&self, c: usize) -> &[u32] {
        &self.user_ids[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Per-candidate lists in candidate order.
    pub fn iter_omegas(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.n_candidates()).map(|c| self.omega(c))
    }

    /// The raw CSR arrays `(offsets, user_ids)`.
    pub fn csr(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.user_ids)
    }

    /// The per-candidate lists as owned nested vectors (the pre-CSR
    /// representation; for callers that slice or reshuffle candidates).
    pub fn to_nested(&self) -> Vec<Vec<u32>> {
        self.iter_omegas().map(<[u32]>::to_vec).collect()
    }

    /// Total number of (candidate, user) influence entries, `Σ_c |Ω_c|` —
    /// the size of the CSR payload and the work bound of one full pass
    /// over it (forward or inverted).
    #[inline]
    pub fn total_influences(&self) -> usize {
        self.user_ids.len()
    }

    /// Number of distinct competitive **weight classes**: users fall into
    /// classes by `|F_o|` (class `w` has weight `1/(w+1)`), so this is
    /// `max |F_o| + 1` — bounded by `|F| + 1`, small in practice. The
    /// selectors bucket per-candidate gains by class (see
    /// [`crate::greedy`]).
    pub fn n_weight_classes(&self) -> usize {
        self.f_count.iter().max().map_or(1, |&m| m as usize + 1)
    }

    /// Competitive weight `1/(|F_o|+1)` of user `o`.
    #[inline]
    pub fn weight(&self, o: u32) -> f64 {
        1.0 / (self.f_count[o as usize] as f64 + 1.0)
    }

    /// `cinf(c)` against the full user set (Definition 4).
    pub fn cinf_candidate(&self, c: usize) -> f64 {
        // lint:allow(float-accum): serial sum over the CSR row in fixed ascending user order
        self.omega(c).iter().map(|&o| self.weight(o)).sum()
    }

    /// The set of users influenced by any candidate in `set`, as a
    /// [`Bitset`] sized to the user range.
    pub fn covered_by(&self, set: &[u32]) -> Bitset {
        let mut covered = Bitset::new(self.n_users());
        for &c in set {
            for &o in self.omega(c as usize) {
                covered.insert(o);
            }
        }
        covered
    }

    /// The union `Ω_G` of influenced users over a candidate set (sorted).
    pub fn omega_of_set(&self, set: &[u32]) -> Vec<u32> {
        self.covered_by(set).iter_ones().collect()
    }

    /// `cinf(G)` for a candidate set (Definition 6): overlapping influence
    /// counts once.
    pub fn cinf_set(&self, set: &[u32]) -> f64 {
        // lint:allow(float-accum): serial sum over the sorted union in fixed ascending user order
        self.omega_of_set(set).iter().map(|&o| self.weight(o)).sum()
    }

    /// The influence sets restricted to the candidate subset `cands`
    /// (global candidate ids, in the given order): row `i` of the result is
    /// this structure's row `cands[i]`, and `f_count` is shared unchanged.
    ///
    /// Because every pruning rule decides candidates independently, this
    /// equals the `InfluenceSets` a from-scratch solve over the same
    /// candidate subset would compute — the query-serving layer relies on
    /// exactly that to answer subset queries without re-verification (the
    /// serve tests assert the resulting solutions bit-identical).
    ///
    /// # Panics
    /// Panics when a candidate id is out of range — serving code validates
    /// ids against `n_candidates` before calling.
    pub fn subset(&self, cands: &[u32]) -> InfluenceSets {
        let mut offsets = Vec::with_capacity(cands.len() + 1);
        offsets.push(0u32);
        let total: usize = cands.iter().map(|&c| self.omega(c as usize).len()).sum();
        let mut user_ids = Vec::with_capacity(total);
        for &c in cands {
            user_ids.extend_from_slice(self.omega(c as usize));
            // lint:allow(narrowing-cast): the subset adjacency is no longer than the full adjacency, which fits u32
            offsets.push(user_ids.len() as u32);
        }
        InfluenceSets {
            offsets,
            user_ids,
            f_count: self.f_count.clone(),
        }
    }

    /// Encodes the structure into the pinned little-endian byte layout
    /// (`offsets`, `user_ids`, `f_count`, each length-prefixed) used by the
    /// `.mc2s` snapshot format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            24 + 4 * (self.offsets.len() + self.user_ids.len() + self.f_count.len()),
        );
        w.put_u32_slice(&self.offsets);
        w.put_u32_slice(&self.user_ids);
        w.put_u32_slice(&self.f_count);
        w.into_bytes()
    }

    /// Decodes [`InfluenceSets::to_bytes`] output, checking every CSR
    /// invariant the accessors rely on. Corrupt input yields a typed
    /// [`CodecError`], never a panic.
    ///
    /// # Errors
    /// [`CodecError::Truncated`]/[`CodecError::BadLength`] on short or
    /// length-corrupt input, [`CodecError::Invalid`] when the decoded
    /// arrays violate a CSR invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let offsets = r.get_u32_vec("InfluenceSets.offsets")?;
        let user_ids = r.get_u32_vec("InfluenceSets.user_ids")?;
        let f_count = r.get_u32_vec("InfluenceSets.f_count")?;
        r.expect_end()?;
        if offsets.first() != Some(&0) {
            return Err(CodecError::Invalid("offsets must start at 0"));
        }
        if offsets[offsets.len() - 1] as usize != user_ids.len() {
            return Err(CodecError::Invalid("offsets must end at user_ids.len()"));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(CodecError::Invalid("offsets not non-decreasing"));
        }
        for w in offsets.windows(2) {
            let row = &user_ids[w[0] as usize..w[1] as usize];
            if !row.windows(2).all(|x| x[0] < x[1]) {
                return Err(CodecError::Invalid("omega_c row not strictly sorted"));
            }
            if row.last().is_some_and(|&u| u as usize >= f_count.len()) {
                return Err(CodecError::Invalid("user id out of the f_count range"));
            }
        }
        Ok(InfluenceSets {
            offsets,
            user_ids,
            f_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper (Examples 1, 3, 4):
    /// c₁ → {o₁, o₂}, c₂ → {o₂, o₄}, c₃ → {o₁, o₃};
    /// f₁ → {o₁, o₂}, f₂ → {o₂, o₄}, so |F| counts are
    /// o₁: 1, o₂: 2, o₃: 0, o₄: 1.
    pub(crate) fn paper_example() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn weights_follow_evenly_split_model() {
        let s = paper_example();
        assert!((s.weight(0) - 0.5).abs() < 1e-12);
        assert!((s.weight(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.weight(2) - 1.0).abs() < 1e-12);
        assert!((s.weight(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn example4_candidate_cinf_values() {
        // Paper Example 4: cinf(c₁) = 5/6, cinf(c₂) = 5/6, cinf(c₃) = 3/2.
        let s = paper_example();
        assert!((s.cinf_candidate(0) - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.cinf_candidate(1) - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.cinf_candidate(2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn example3_set_cinf_values() {
        // Paper Example 3: cinf({c₁,c₂}) = 4/3, cinf({c₁,c₃}) = 11/6.
        let s = paper_example();
        assert!((s.cinf_set(&[0, 1]) - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.cinf_set(&[0, 2]) - 11.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn omega_of_set_unions_without_duplicates() {
        let s = paper_example();
        assert_eq!(s.omega_of_set(&[0, 1]), vec![0, 1, 3]);
        assert_eq!(s.omega_of_set(&[0, 2]), vec![0, 1, 2]);
        assert_eq!(s.omega_of_set(&[]), Vec::<u32>::new());
        assert_eq!(s.covered_by(&[0, 1]).count_ones(), 3);
    }

    #[test]
    fn size_and_class_accessors() {
        let s = paper_example();
        assert_eq!(s.total_influences(), 6);
        // |F_o| counts are {1, 2, 0, 1} → classes 0..=2.
        assert_eq!(s.n_weight_classes(), 3);
        let empty = InfluenceSets::new(vec![vec![]], vec![]);
        assert_eq!(empty.total_influences(), 0);
        assert_eq!(empty.n_weight_classes(), 1);
    }

    #[test]
    fn cinf_is_monotone_and_subadditive() {
        let s = paper_example();
        let single = s.cinf_set(&[0]);
        let pair = s.cinf_set(&[0, 1]);
        assert!(pair >= single);
        assert!(pair <= s.cinf_candidate(0) + s.cinf_candidate(1) + 1e-12);
    }

    #[test]
    fn csr_layout_matches_nested_input() {
        let s = paper_example();
        let (offsets, user_ids) = s.csr();
        assert_eq!(offsets, &[0, 2, 4, 6]);
        assert_eq!(user_ids, &[0, 1, 1, 3, 0, 2]);
        assert_eq!(s.omega(0), [0, 1]);
        assert_eq!(s.omega(1), [1, 3]);
        assert_eq!(s.omega(2), [0, 2]);
        assert_eq!(s.n_candidates(), 3);
    }

    #[test]
    fn nested_round_trip_is_lossless() {
        let nested = vec![vec![0, 1], vec![], vec![2], vec![0, 1, 2, 3]];
        let s = InfluenceSets::new(nested.clone(), vec![0; 4]);
        assert_eq!(s.to_nested(), nested);
        let (offsets, user_ids) = s.csr();
        let rebuilt =
            InfluenceSets::from_csr(offsets.to_vec(), user_ids.to_vec(), s.f_count.clone());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn empty_candidate_lists_are_preserved() {
        let s = InfluenceSets::new(vec![vec![], vec![], vec![1]], vec![0, 0]);
        assert_eq!(s.n_candidates(), 3);
        assert!(s.omega(0).is_empty());
        assert!(s.omega(1).is_empty());
        assert_eq!(s.omega(2), [1]);
        assert_eq!(s.iter_omegas().count(), 3);
    }

    #[test]
    #[should_panic(expected = "offsets must end at user_ids.len()")]
    fn csr_with_dangling_ids_is_rejected() {
        InfluenceSets::from_csr(vec![0, 1], vec![0, 1, 2], vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn csr_with_bad_leading_offset_is_rejected() {
        InfluenceSets::from_csr(vec![1, 3], vec![0, 1, 2], vec![0; 3]);
    }

    #[test]
    fn subset_slices_rows_in_request_order() {
        let s = paper_example();
        let sub = s.subset(&[2, 0]);
        assert_eq!(sub.n_candidates(), 2);
        assert_eq!(sub.omega(0), s.omega(2));
        assert_eq!(sub.omega(1), s.omega(0));
        assert_eq!(sub.f_count, s.f_count);
        let empty = s.subset(&[]);
        assert_eq!(empty.n_candidates(), 0);
        assert_eq!(empty.total_influences(), 0);
    }

    #[test]
    fn byte_codec_round_trips_bit_identically() {
        let s = paper_example();
        let decoded = InfluenceSets::from_bytes(&s.to_bytes()).expect("round trip");
        assert_eq!(decoded, s);
        let empty = InfluenceSets::new(vec![vec![]], vec![]);
        assert_eq!(
            InfluenceSets::from_bytes(&empty.to_bytes()).expect("empty"),
            empty
        );
    }

    #[test]
    fn byte_codec_rejects_corruption_without_panicking() {
        let s = paper_example();
        let bytes = s.to_bytes();
        // Truncations at every prefix length fail with a typed error.
        for cut in 0..bytes.len() {
            assert!(InfluenceSets::from_bytes(&bytes[..cut]).is_err(), "{cut}");
        }
        // An unsorted row is caught by the invariant check: swap the two
        // user ids of candidate 0 (offsets block is 4 entries + prefix).
        let mut swapped = bytes.clone();
        let row_start = 8 + 4 * 4 + 8; // offsets prefix+payload, ids prefix
        swapped.swap(row_start, row_start + 4);
        swapped.swap(row_start + 1, row_start + 5);
        swapped.swap(row_start + 2, row_start + 6);
        swapped.swap(row_start + 3, row_start + 7);
        assert!(InfluenceSets::from_bytes(&swapped).is_err());
        // Trailing garbage is rejected too.
        let mut long = bytes;
        long.push(0);
        assert!(InfluenceSets::from_bytes(&long).is_err());
    }
}
