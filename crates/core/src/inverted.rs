//! The inverted influence index: `user → candidates whose Ω_c contain that
//! user`, in the same flat CSR layout as [`InfluenceSets`] uses for the
//! forward direction.
//!
//! The decremental greedy selector ([`crate::greedy::select_decremental`])
//! needs to answer "which candidates lose this user?" every time a user
//! becomes covered; the inverted CSR answers that in one contiguous slice
//! read. Construction is one counting sort over the forward CSR and
//! parallelises by candidate chunks: each worker inverts its contiguous
//! candidate range privately and the per-chunk partial CSRs are stitched
//! back **in chunk order**. Candidate ids ascend within a chunk (the worker
//! walks them in order) and across chunks (ranges are contiguous and
//! ordered), so every user's stitched candidate list is sorted and the
//! whole structure is bit-identical for any thread count.

use crate::parallel::map_chunks;
use crate::InfluenceSets;
use mc2ls_geo::{ByteReader, ByteWriter, CodecError};

/// CSR mapping each user to the sorted candidates that influence them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedIndex {
    /// Row pointers: user `o` owns `cand_ids[offsets[o] as usize ..
    /// offsets[o + 1] as usize]`. Always `n_users + 1` entries.
    offsets: Vec<u32>,
    /// Concatenated sorted candidate ids of every user.
    cand_ids: Vec<u32>,
}

impl InvertedIndex {
    /// Inverts the forward CSR of `sets` across `threads` workers.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn build(sets: &InfluenceSets, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        let n_users = sets.n_users();
        let n_cands = sets.n_candidates();

        // Each worker counting-sorts its candidate chunk into a private
        // partial CSR over the full user range.
        let parts: Vec<(Vec<u32>, Vec<u32>)> = map_chunks(n_cands, threads, |range| {
            let mut offs = vec![0u32; n_users + 1];
            for c in range.clone() {
                for &o in sets.omega(c) {
                    offs[o as usize + 1] += 1;
                }
            }
            for o in 0..n_users {
                offs[o + 1] += offs[o];
            }
            let mut ids = vec![0u32; offs[n_users] as usize];
            let mut cursor = offs[..n_users].to_vec();
            for c in range {
                for &o in sets.omega(c) {
                    let slot = cursor[o as usize];
                    // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
                    ids[slot as usize] = c as u32;
                    cursor[o as usize] = slot + 1;
                }
            }
            (offs, ids)
        });

        // Stitch: per user, concatenate the chunk-local slices in chunk
        // order. Chunked candidate ranges ascend, so the result is sorted.
        let mut offsets = vec![0u32; n_users + 1];
        for (offs, _) in &parts {
            for o in 0..n_users {
                offsets[o + 1] += offs[o + 1] - offs[o];
            }
        }
        for o in 0..n_users {
            offsets[o + 1] += offsets[o];
        }
        let mut cand_ids = vec![0u32; offsets[n_users] as usize];
        let mut cursor = offsets[..n_users].to_vec();
        for (offs, ids) in &parts {
            for o in 0..n_users {
                let src = &ids[offs[o] as usize..offs[o + 1] as usize];
                let dst = cursor[o] as usize;
                cand_ids[dst..dst + src.len()].copy_from_slice(src);
                // lint:allow(narrowing-cast): a CSR row is no longer than the total adjacency, which fits u32
                cursor[o] += src.len() as u32;
            }
        }
        InvertedIndex { offsets, cand_ids }
    }

    /// Number of users (rows).
    pub fn n_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (user, candidate) influence entries — identical to
    /// the forward CSR's `Σ|Ω_c|`.
    pub fn len(&self) -> usize {
        self.cand_ids.len()
    }

    /// Whether the index holds no influence entry at all.
    pub fn is_empty(&self) -> bool {
        self.cand_ids.is_empty()
    }

    /// The sorted candidates influencing user `o`.
    #[inline]
    pub fn candidates_of(&self, o: u32) -> &[u32] {
        &self.cand_ids[self.offsets[o as usize] as usize..self.offsets[o as usize + 1] as usize]
    }

    /// Encodes the structure into the pinned little-endian byte layout
    /// (`offsets` then `cand_ids`, each length-prefixed) used by the
    /// `.mc2s` snapshot format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(16 + 4 * (self.offsets.len() + self.cand_ids.len()));
        w.put_u32_slice(&self.offsets);
        w.put_u32_slice(&self.cand_ids);
        w.into_bytes()
    }

    /// Decodes [`InvertedIndex::to_bytes`] output, checking every CSR
    /// invariant the accessors rely on. Corrupt input yields a typed
    /// [`CodecError`], never a panic.
    ///
    /// # Errors
    /// [`CodecError::Truncated`]/[`CodecError::BadLength`] on short or
    /// length-corrupt input, [`CodecError::Invalid`] when the decoded
    /// arrays violate a CSR invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let offsets = r.get_u32_vec("InvertedIndex.offsets")?;
        let cand_ids = r.get_u32_vec("InvertedIndex.cand_ids")?;
        r.expect_end()?;
        if offsets.first() != Some(&0) {
            return Err(CodecError::Invalid("offsets must start at 0"));
        }
        if offsets[offsets.len() - 1] as usize != cand_ids.len() {
            return Err(CodecError::Invalid("offsets must end at cand_ids.len()"));
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(CodecError::Invalid("offsets not non-decreasing"));
        }
        for w in offsets.windows(2) {
            let row = &cand_ids[w[0] as usize..w[1] as usize];
            if !row.windows(2).all(|x| x[0] < x[1]) {
                return Err(CodecError::Invalid("candidate row not strictly sorted"));
            }
        }
        Ok(InvertedIndex { offsets, cand_ids })
    }

    /// Structural sanitizer: checks every CSR invariant the accessors rely
    /// on. Always callable; the body compiles away in release builds.
    ///
    /// # Panics
    /// Panics (debug builds only) when the row pointers are malformed or a
    /// user's candidate list is unsorted / holds duplicates.
    pub fn validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert!(!self.offsets.is_empty(), "offsets needs a leading 0 entry");
            assert_eq!(self.offsets[0], 0, "offsets must start at 0");
            assert_eq!(
                self.offsets[self.offsets.len() - 1] as usize,
                self.cand_ids.len(),
                "offsets must end at cand_ids.len()"
            );
            assert!(
                self.offsets.windows(2).all(|w| w[0] <= w[1]),
                "offsets not non-decreasing"
            );
            for w in self.offsets.windows(2) {
                let row = &self.cand_ids[w[0] as usize..w[1] as usize];
                assert!(
                    row.windows(2).all(|x| x[0] < x[1]),
                    "candidate row not sorted"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sets() -> InfluenceSets {
        InfluenceSets::new(vec![vec![0, 1], vec![1, 3], vec![0, 2]], vec![1, 2, 0, 1])
    }

    #[test]
    fn inverts_the_paper_example() {
        let inv = InvertedIndex::build(&paper_sets(), 1);
        assert_eq!(inv.n_users(), 4);
        assert_eq!(inv.len(), 6);
        assert_eq!(inv.candidates_of(0), [0, 2]);
        assert_eq!(inv.candidates_of(1), [0, 1]);
        assert_eq!(inv.candidates_of(2), [2]);
        assert_eq!(inv.candidates_of(3), [1]);
    }

    #[test]
    fn round_trips_against_the_forward_csr() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..25 {
            let n_users = 1 + (next() % 50) as usize;
            let n_cands = 1 + (next() % 20) as usize;
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c.clone(), vec![0; n_users]);
            let inv = InvertedIndex::build(&sets, 1);
            assert_eq!(inv.len(), sets.total_influences());
            for o in 0..n_users as u32 {
                let want: Vec<u32> = (0..n_cands as u32)
                    .filter(|&c| omega_c[c as usize].contains(&o))
                    .collect();
                assert_eq!(inv.candidates_of(o), want.as_slice(), "user {o}");
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let mut seed = 7u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..10 {
            let n_users = 1 + (next() % 60) as usize;
            let n_cands = 1 + (next() % 25) as usize;
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 2 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c, vec![0; n_users]);
            let serial = InvertedIndex::build(&sets, 1);
            for threads in [2usize, 4, 7, 16] {
                assert_eq!(serial, InvertedIndex::build(&sets, threads), "t={threads}");
            }
        }
    }

    #[test]
    fn byte_codec_round_trips_and_rejects_corruption() {
        let inv = InvertedIndex::build(&paper_sets(), 2);
        let bytes = inv.to_bytes();
        assert_eq!(InvertedIndex::from_bytes(&bytes).expect("round trip"), inv);
        for cut in 0..bytes.len() {
            assert!(InvertedIndex::from_bytes(&bytes[..cut]).is_err(), "{cut}");
        }
        // Corrupting the row-pointer monotonicity is a typed error.
        let mut bad = bytes;
        bad[8] = 0xFF; // first offset entry becomes nonzero
        assert!(InvertedIndex::from_bytes(&bad).is_err());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let sets = InfluenceSets::new(vec![vec![], vec![]], vec![0; 3]);
        let inv = InvertedIndex::build(&sets, 4);
        assert!(inv.is_empty());
        assert_eq!(inv.n_users(), 3);
        assert!(inv.candidates_of(2).is_empty());
    }
}
