//! MC²LS: Mobility-oriented Competitive-based Collective Location Selection.
//!
//! This crate implements the paper's problem (Definition 7) and all of its
//! solution algorithms:
//!
//! * [`Problem`] — the instance: moving users `Ω`, competitor facilities
//!   `F`, candidate sites `C`, budget `k`, threshold `τ` and the
//!   distance-probability function `PF`.
//! * [`algorithms::baseline`] — the straightforward greedy (paper §IV-A):
//!   exhaustive influence computation plus greedy selection.
//! * [`algorithms::kcifp`] — Adapted k-CIFP (Algorithm 1): R-trees over `C`
//!   and `F` with the classical IA/NIB candidate-pruning regions.
//! * [`algorithms::iqt`] — the IQuad-tree solution (Algorithm 2), in the
//!   paper's three flavours: `IQT-C` (IS+NIR only), `IQT` (adds NIB) and
//!   `IQT-PINO` (adds NIB and IA).
//! * [`algorithms::exact`] — exhaustive/branch-and-bound optimum for small
//!   instances; the oracle behind the `(1 − 1/e)` quality tests.
//! * [`greedy`] — the shared submodular greedy selector (Theorem 2), with a
//!   standard re-evaluating implementation and a lazy (CELF) variant that
//!   returns identical results faster.
//!
//! Every algorithm produces the same [`Solution`] on the same input (the
//! pruning rules are lossless); the integration suite asserts this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
mod bitset;
mod cinf;
pub mod greedy;
mod influence_sets;
mod inverted;
pub mod parallel;
mod problem;
pub mod pruning;
pub mod shard;
pub mod sketch;
mod solution;
mod stats;
pub mod update;
mod verify;

pub use bitset::{Bitset, IterOnes};
pub use cinf::{cinf_of_set, competitive_weight};
pub use influence_sets::InfluenceSets;
pub use inverted::InvertedIndex;
pub use problem::Problem;
pub use shard::{GatherScratch, GatherStats};
pub use solution::Solution;
pub use stats::{PhaseTimes, PruneStats, RunReport, SelectionStats};
pub use update::{UpdateEngine, UpdateError, UpdateStats, UserUpdate};

pub use algorithms::{solve, IqtConfig, Method};
