//! User-sharded scatter/gather selection over zero-copy CSR views.
//!
//! The competitive influence objective is **additive over users**
//! (Equation 1 sums an independent weight `1/(|F_o|+1)` per influenced
//! user), so every per-candidate per-weight-class count
//! `counts[c][w] = #{uncovered o ∈ Ω_c : |F_o| = w}` splits exactly across
//! any partition of the user id space:
//!
//! ```text
//! counts[c][w] = Σ_shards #{uncovered o ∈ Ω_c ∩ shard : |F_o| = w}
//! ```
//!
//! Integer counts sum associatively, and the canonical gain
//! (`greedy::canonical_gain_model`) is a pure function of the merged counts —
//! so a **gather** over per-shard count vectors materialises the exact
//! `f64` gain bits the unsharded selector computes, and the selection
//! loop ([`gather_select`]) replays `select_decremental_counted`'s
//! decisions byte-for-byte at any shard count and any worker count.
//!
//! The module has three layers:
//!
//! * [`shard_starts`] / [`split_sets`] — build-time partitioning of an
//!   [`InfluenceSets`] by contiguous user-id range (users rebased to
//!   shard-local ids, candidate rows kept global).
//! * [`CsrView`] / [`ShardView`] / [`parse_shard_view`] — zero-copy views
//!   over the canonical CSR wire encoding ([`InfluenceSets::to_bytes`],
//!   `InvertedIndex::to_bytes`), validated once at parse time so query
//!   paths index without re-checking.
//! * [`materialise_counts`] / [`gather_select`] — the scatter/gather
//!   query plane: one **scatter** per selection round walks each shard's
//!   forward row of the picked candidate, covers the shard's users and
//!   emits per-class decrement events from the shard's inverted rows; the
//!   **gather** applies the events to the merged count matrix and
//!   refreshes gains through the shared lazy-bucket heap.

use crate::greedy::{canonical_gain_model, Entry};
use crate::{Bitset, InfluenceSets, SelectionStats, Solution};
use mc2ls_geo::{ByteReader, CodecError, U32View};
use mc2ls_influence::{CompetitionModel, Model};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Balanced contiguous shard boundaries over `0..n_users`: a vector of
/// `s + 1` cut points starting at 0 and ending at `n_users`, where
/// `s = clamp(n_shards, 1, max(n_users, 1))`. The first `n_users mod s`
/// shards hold one extra user. Deterministic in its inputs.
pub fn shard_starts(n_users: usize, n_shards: usize) -> Vec<u32> {
    let s = n_shards.clamp(1, n_users.max(1));
    let base = n_users / s;
    let extra = n_users % s;
    let mut starts = Vec::with_capacity(s + 1);
    let mut at = 0usize;
    starts.push(0u32);
    for i in 0..s {
        at += base + usize::from(i < extra);
        // lint:allow(narrowing-cast): at <= n_users, which InfluenceSets caps at the u32 id space
        starts.push(at as u32);
    }
    starts
}

/// Splits `sets` by the user ranges in `starts` (a [`shard_starts`]-shaped
/// boundary vector): shard `s` receives users `starts[s]..starts[s+1]`
/// rebased to local ids `0..len`, every candidate keeps its global row
/// (possibly empty in a shard), and `f_count` is sliced per shard.
///
/// # Panics
/// Panics when `starts` is not a monotone boundary vector over the user
/// id space.
pub fn split_sets(sets: &InfluenceSets, starts: &[u32]) -> Vec<InfluenceSets> {
    assert!(starts.len() >= 2, "need at least one shard");
    assert_eq!(starts[0], 0, "shard boundaries must start at 0");
    assert_eq!(
        starts[starts.len() - 1] as usize,
        sets.n_users(),
        "shard boundaries must end at the user count"
    );
    (0..starts.len() - 1)
        .map(|s| {
            let (lo, hi) = (starts[s], starts[s + 1]);
            assert!(lo <= hi, "shard boundaries must be monotone");
            let rows: Vec<Vec<u32>> = (0..sets.n_candidates())
                .map(|c| {
                    let row = sets.omega(c);
                    let a = row.partition_point(|&o| o < lo);
                    let b = row.partition_point(|&o| o < hi);
                    row[a..b].iter().map(|&o| o - lo).collect()
                })
                .collect();
            InfluenceSets::new(rows, sets.f_count[lo as usize..hi as usize].to_vec())
        })
        .collect()
}

/// A validated zero-copy CSR: `offsets` (one leading 0, one entry past the
/// last row) and `ids` both borrowed from encoded bytes. Construction
/// checks every structural invariant once — monotone offsets bracketing
/// the id array, strictly sorted rows, ids below `id_bound` — so accessors
/// index without re-validating.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    offsets: U32View<'a>,
    ids: U32View<'a>,
}

impl<'a> CsrView<'a> {
    /// Validates and wraps an offsets/ids pair.
    pub fn new(
        offsets: U32View<'a>,
        ids: U32View<'a>,
        id_bound: u32,
    ) -> Result<CsrView<'a>, &'static str> {
        if offsets.is_empty() {
            return Err("CSR offsets need a leading 0 entry");
        }
        if offsets.get(0) != 0 {
            return Err("CSR offsets must start at 0");
        }
        if ids.len() > u32::MAX as usize {
            return Err("CSR id count exceeds the u32 offset space");
        }
        let mut prev_off = 0u32;
        for off in offsets.iter() {
            if off < prev_off {
                return Err("CSR offsets must be non-decreasing");
            }
            prev_off = off;
        }
        if prev_off as usize != ids.len() {
            return Err("CSR offsets must end at the id count");
        }
        let view = CsrView { offsets, ids };
        for r in 0..view.n_rows() {
            let mut prev: Option<u32> = None;
            for id in view.row(r) {
                if id >= id_bound {
                    return Err("CSR id out of range");
                }
                if prev.is_some_and(|p| id <= p) {
                    return Err("CSR rows must be strictly sorted");
                }
                prev = Some(id);
            }
        }
        Ok(view)
    }

    /// Wraps an offsets/ids pair **without** re-running the structural
    /// checks. Only for payload bytes a previous [`CsrView::new`] on the
    /// same bytes already validated (e.g. re-deriving views from a loaded
    /// snapshot each query): handing unvalidated bytes here trades the
    /// typed errors for row accessors that may panic or misread.
    pub fn trusted(offsets: U32View<'a>, ids: U32View<'a>) -> CsrView<'a> {
        CsrView { offsets, ids }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total ids across all rows.
    #[inline]
    pub fn total_ids(&self) -> usize {
        self.ids.len()
    }

    /// Number of ids in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        (self.offsets.get(r + 1) - self.offsets.get(r)) as usize
    }

    /// Iterates row `r`'s ids in sorted order.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = u32> + 'a {
        self.ids.iter_range(
            self.offsets.get(r) as usize,
            self.offsets.get(r + 1) as usize,
        )
    }
}

/// One user shard's read plane, borrowed from snapshot bytes: the forward
/// candidate → local-user CSR, the per-local-user weight classes, and the
/// inverted local-user → global-candidate CSR.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// Global id of the shard's local user 0.
    pub user_base: u32,
    /// Users in this shard.
    pub n_users: u32,
    /// Candidate → sorted local user ids (rows are global candidates).
    pub fwd: CsrView<'a>,
    /// `|F_o|` per local user.
    pub f_count: U32View<'a>,
    /// Local user → sorted global candidate ids.
    pub inv: CsrView<'a>,
}

/// Parses one shard's forward payload (`InfluenceSets::to_bytes` of the
/// shard-local sets) and inverted payload (`InvertedIndex::to_bytes`) into
/// a fully validated [`ShardView`] without copying any array.
///
/// # Errors
/// [`CodecError`] when either payload is malformed, truncated, carries
/// trailing bytes, or violates a CSR/cross-array invariant.
pub fn parse_shard_view<'a>(
    user_base: u32,
    fwd_payload: &'a [u8],
    inv_payload: &'a [u8],
    n_candidates: u32,
) -> Result<ShardView<'a>, CodecError> {
    let mut r = ByteReader::new(fwd_payload);
    let offsets = r.get_u32_view("InfluenceSets.offsets")?;
    let ids = r.get_u32_view("InfluenceSets.user_ids")?;
    let f_count = r.get_u32_view("InfluenceSets.f_count")?;
    r.expect_end()?;
    if f_count.len() > u32::MAX as usize {
        return Err(CodecError::Invalid("shard user count exceeds u32"));
    }
    // lint:allow(narrowing-cast): bounded by the u32::MAX check above
    let n_users = f_count.len() as u32;
    let fwd = CsrView::new(offsets, ids, n_users).map_err(CodecError::Invalid)?;
    if fwd.n_rows() != n_candidates as usize {
        return Err(CodecError::Invalid("shard candidate row count mismatch"));
    }

    let mut r = ByteReader::new(inv_payload);
    let offsets = r.get_u32_view("InvertedIndex.offsets")?;
    let cand_ids = r.get_u32_view("InvertedIndex.cand_ids")?;
    r.expect_end()?;
    let inv = CsrView::new(offsets, cand_ids, n_candidates).map_err(CodecError::Invalid)?;
    if inv.n_rows() != f_count.len() {
        return Err(CodecError::Invalid("inverted row count mismatch"));
    }
    if inv.total_ids() != fwd.total_ids() {
        return Err(CodecError::Invalid("inverted entry count mismatch"));
    }

    Ok(ShardView {
        user_base,
        n_users,
        fwd,
        f_count,
        inv,
    })
}

/// Re-parses shard payloads that a previous [`parse_shard_view`] over the
/// same bytes already validated, skipping the `O(edges)` structural
/// re-checks — the per-query fast path of a zero-copy snapshot load. The
/// only remaining failure mode is array framing (lengths), which stays
/// `O(1)`.
///
/// # Errors
/// [`CodecError`] when either payload's array framing is malformed — but
/// CSR invariants are **assumed**, per the [`CsrView::trusted`] contract.
pub fn trusted_shard_view<'a>(
    user_base: u32,
    fwd_payload: &'a [u8],
    inv_payload: &'a [u8],
) -> Result<ShardView<'a>, CodecError> {
    let mut r = ByteReader::new(fwd_payload);
    let offsets = r.get_u32_view("InfluenceSets.offsets")?;
    let ids = r.get_u32_view("InfluenceSets.user_ids")?;
    let f_count = r.get_u32_view("InfluenceSets.f_count")?;
    if f_count.len() > u32::MAX as usize {
        return Err(CodecError::Invalid("shard user count exceeds u32"));
    }
    // lint:allow(narrowing-cast): bounded by the u32::MAX check above
    let n_users = f_count.len() as u32;
    let fwd = CsrView::trusted(offsets, ids);
    let mut r = ByteReader::new(inv_payload);
    let offsets = r.get_u32_view("InvertedIndex.offsets")?;
    let cand_ids = r.get_u32_view("InvertedIndex.cand_ids")?;
    let inv = CsrView::trusted(offsets, cand_ids);
    Ok(ShardView {
        user_base,
        n_users,
        fwd,
        f_count,
        inv,
    })
}

/// Scatter/gather execution counters for one query. Unlike
/// [`SelectionStats`] (deterministic work units), the nanosecond fields
/// are measured wall-clock: `busy_ns` sums every shard's scatter time and
/// `critical_path_ns` sums each round's **slowest** shard — what a fleet
/// of free cores would wait for, measurable even when the shards actually
/// ran serially on a one-core host.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherStats {
    /// User shards in the snapshot.
    pub shards: u32,
    /// Scatter worker threads used (`min(threads, shards)`).
    pub workers: u32,
    /// Selection rounds executed (`k`).
    pub rounds: u32,
    /// Per-class decrement events gathered across all rounds.
    pub scatter_events: u64,
    /// Total scatter time summed over every shard, nanoseconds.
    pub busy_ns: u64,
    /// Per-round maximum shard scatter time, summed over rounds.
    pub critical_path_ns: u64,
    /// Whether the initial count matrix came from the engine's shared
    /// per-epoch materialisation rather than a private pass.
    pub shared_epoch: bool,
}

/// Materialises the merged initial count matrix
/// `counts[c * n_classes + w] = #{o ∈ Ω_c : |F_o| = w}` from per-shard
/// views, fanning shards out over `threads` workers. Per-shard partial
/// matrices are summed in shard order; integer addition makes the merge
/// independent of the chunking, so the result is bit-identical to the
/// unsharded pass for any shard or thread count.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn materialise_counts(
    shards: &[ShardView<'_>],
    n_candidates: usize,
    n_classes: usize,
    threads: usize,
) -> Vec<u32> {
    let mut counts = vec![0u32; n_candidates * n_classes];
    let parts = crate::parallel::map_chunks(shards.len(), threads, |range| {
        let mut part = vec![0u32; n_candidates * n_classes];
        for view in &shards[range] {
            for c in 0..n_candidates {
                for o in view.fwd.row(c) {
                    part[c * n_classes + view.f_count.get(o as usize) as usize] += 1;
                }
            }
        }
        part
    });
    for part in parts {
        for (t, p) in counts.iter_mut().zip(part) {
            *t += p;
        }
    }
    counts
}

/// Gathers the rows of `subset` (global candidate ids) out of a full
/// `n_classes`-wide count matrix — the cheap epoch-shared path for subset
/// queries.
pub fn subset_counts(full: &[u32], n_classes: usize, subset: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(subset.len() * n_classes);
    for &c in subset {
        let cu = c as usize;
        out.extend_from_slice(&full[cu * n_classes..(cu + 1) * n_classes]);
    }
    out
}

/// Per-shard mutable selection state. Shards partition the user space, so
/// each worker owns its shard's coverage bitset exclusively.
#[derive(Debug)]
struct ShardState {
    covered: Bitset,
}

/// Reusable allocation pool for [`gather_select_with_scratch`]: the
/// lazy-bucket heap, the version/taken/stamp arrays, the touched list and
/// the per-shard coverage bitsets ([`Bitset::clear`] is a short memset)
/// survive across repeated selections — a serving loop answering many
/// queries against one snapshot stops paying per-query allocation cost.
#[derive(Debug, Default)]
pub struct GatherScratch {
    version: Vec<u32>,
    taken: Vec<bool>,
    stamp: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<Entry>,
    states: Vec<ShardState>,
}

impl GatherScratch {
    /// An empty pool; every buffer grows to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-shapes for `n` selection rows over `shards`, clearing in place
    /// wherever the previous use already had the right shape.
    fn reset(&mut self, n: usize, shards: &[ShardView<'_>]) {
        self.version.clear();
        self.version.resize(n, 0);
        self.taken.clear();
        self.taken.resize(n, false);
        self.stamp.clear();
        self.stamp.resize(n, u32::MAX);
        self.touched.clear();
        self.heap.clear();
        let reusable = self.states.len() == shards.len()
            && self
                .states
                .iter()
                .zip(shards)
                .all(|(s, v)| s.covered.len() == v.n_users as usize);
        if reusable {
            for s in &mut self.states {
                s.covered.clear();
            }
        } else {
            self.states = shards
                .iter()
                .map(|v| ShardState {
                    covered: Bitset::new(v.n_users as usize),
                })
                .collect();
        }
    }
}

/// One shard's scatter for a selected candidate: cover the shard's not-yet
/// covered users of `Ω_c` and emit one `(row, weight_class)` decrement
/// event per affected un-taken candidate row. `pos_of` (when querying a
/// subset) maps global candidate ids to subset rows, `u32::MAX` marking
/// non-members.
fn scatter_one(
    view: &ShardView<'_>,
    state: &mut ShardState,
    global_c: u32,
    pos_of: Option<&[u32]>,
    taken: &[bool],
) -> (Vec<(u32, u32)>, u64) {
    let t = Instant::now();
    let mut events = Vec::new();
    for o in view.fwd.row(global_c as usize) {
        if state.covered.contains(o) {
            continue;
        }
        state.covered.insert(o);
        let w = view.f_count.get(o as usize);
        for c2 in view.inv.row(o as usize) {
            let row = match pos_of {
                Some(map) => {
                    let p = map[c2 as usize];
                    if p == u32::MAX {
                        continue;
                    }
                    p
                }
                None => c2,
            };
            if taken[row as usize] {
                continue;
            }
            events.push((row, w));
        }
    }
    // Truncation-safe: a scatter pass lasts far below u64 nanoseconds.
    (events, t.elapsed().as_nanos() as u64)
}

/// Scatters one round across all shards on up to `workers` threads,
/// returning per-shard `(events, busy_ns)` **in shard order** (contiguous
/// shard chunks, stitched in chunk order — the event stream any worker
/// count produces is identical).
fn scatter_round(
    shards: &[ShardView<'_>],
    states: &mut [ShardState],
    global_c: u32,
    pos_of: Option<&[u32]>,
    taken: &[bool],
    workers: usize,
) -> Vec<(Vec<(u32, u32)>, u64)> {
    let n_shards = shards.len();
    let workers = workers.min(n_shards).max(1);
    if workers == 1 {
        return shards
            .iter()
            .zip(states.iter_mut())
            .map(|(view, state)| scatter_one(view, state, global_c, pos_of, taken))
            .collect();
    }
    let chunk = n_shards.div_ceil(workers);
    let mut out = Vec::with_capacity(n_shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .chunks(chunk)
            .zip(states.chunks_mut(chunk))
            .map(|(views, sts)| {
                scope.spawn(move || {
                    views
                        .iter()
                        .zip(sts.iter_mut())
                        .map(|(view, state)| scatter_one(view, state, global_c, pos_of, taken))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint:allow(panic-path): join only fails when the worker panicked; re-raising on the spawner is intended
            out.extend(h.join().expect("scatter worker panicked"));
        }
    });
    out
}

/// The sharded selection loop: a faithful replay of
/// `greedy::select_decremental_counted` whose decrement phase is scattered
/// across user shards and gathered back into the merged count matrix.
///
/// * `counts` is the initial matrix — [`materialise_counts`] for the full
///   candidate set, or [`subset_counts`] rows when `subset` is `Some`
///   (then rows are subset positions and the returned `selected` ids are
///   positions into `subset`, exactly like solving the sub-instance).
/// * `total_influences` is `Σ_c |Ω_c|` of the (sub-)instance, feeding the
///   same `users_scanned`/`inverted_entries` counters the decremental
///   selector reports.
///
/// Returns the [`Solution`] (byte-identical to the unsharded selectors),
/// the decremental-selector-shaped [`SelectionStats`], and the
/// [`GatherStats`] execution counters.
///
/// # Panics
/// Panics when `k` exceeds the row count, the matrix shape disagrees with
/// `subset`/`n_candidates`/`n_classes`, or `threads == 0`.
#[allow(clippy::too_many_arguments)] // mirrors select_decremental_counted + the scatter inputs
pub fn gather_select(
    shards: &[ShardView<'_>],
    n_candidates: usize,
    n_classes: usize,
    counts: Vec<u32>,
    subset: Option<&[u32]>,
    total_influences: u64,
    k: usize,
    threads: usize,
) -> (Solution, SelectionStats, GatherStats) {
    gather_select_with_scratch(
        shards,
        n_candidates,
        n_classes,
        counts,
        subset,
        total_influences,
        k,
        threads,
        &mut GatherScratch::new(),
    )
}

/// [`gather_select`] with a caller-owned [`GatherScratch`]: identical
/// output bit for bit (the heap is reseeded from `counts` every call, so
/// reuse only recycles allocations), but repeated selections over the same
/// shard shapes touch the allocator zero times.
#[allow(clippy::too_many_arguments)] // mirrors select_decremental_counted + the scatter inputs
pub fn gather_select_with_scratch(
    shards: &[ShardView<'_>],
    n_candidates: usize,
    n_classes: usize,
    counts: Vec<u32>,
    subset: Option<&[u32]>,
    total_influences: u64,
    k: usize,
    threads: usize,
    scratch: &mut GatherScratch,
) -> (Solution, SelectionStats, GatherStats) {
    gather_select_with_scratch_model(
        shards,
        n_candidates,
        n_classes,
        counts,
        subset,
        total_influences,
        k,
        threads,
        scratch,
        &Model::Cumulative,
    )
}

/// [`gather_select_with_scratch`] under an arbitrary (monotone submodular)
/// competition model: the scattered decrement phase is model-independent
/// integer arithmetic, so only the heap-seed and refresh gain
/// materialisations change — through the same canonical walk as every
/// unsharded selector.
#[allow(clippy::too_many_arguments)] // mirrors select_decremental_counted + the scatter inputs
pub fn gather_select_with_scratch_model<M: CompetitionModel>(
    shards: &[ShardView<'_>],
    n_candidates: usize,
    n_classes: usize,
    mut counts: Vec<u32>,
    subset: Option<&[u32]>,
    total_influences: u64,
    k: usize,
    threads: usize,
    scratch: &mut GatherScratch,
    model: &M,
) -> (Solution, SelectionStats, GatherStats) {
    let n = subset.map_or(n_candidates, <[u32]>::len);
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    assert!(threads >= 1, "need at least one worker thread");
    assert_eq!(counts.len(), n * n_classes, "count matrix shape mismatch");

    let mut stats = SelectionStats {
        inverted_entries: total_influences,
        users_scanned: total_influences,
        ..SelectionStats::default()
    };
    let workers = threads.min(shards.len()).max(1);
    let mut gather = GatherStats {
        // lint:allow(narrowing-cast): shard counts are operator-configured small integers
        shards: shards.len() as u32,
        // lint:allow(narrowing-cast): workers <= shards
        workers: workers as u32,
        ..GatherStats::default()
    };

    // Subset queries remap the scatter's global candidate ids to rows.
    let pos_of: Option<Vec<u32>> = subset.map(|cands| {
        let mut map = vec![u32::MAX; n_candidates];
        for (i, &c) in cands.iter().enumerate() {
            // lint:allow(narrowing-cast): i < n <= n_candidates, which fits the u32 id space
            map[c as usize] = i as u32;
        }
        map
    });

    // Seed the lazy-bucket heap exactly like the decremental selector,
    // recycling the pool's buffers wherever the shapes already match.
    scratch.reset(n, shards);
    let GatherScratch {
        version,
        taken,
        stamp,
        touched,
        heap,
        states,
    } = scratch;
    for c in 0..n {
        heap.push(Entry {
            gain: canonical_gain_model(&counts[c * n_classes..(c + 1) * n_classes], model),
            // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
            cand: c as u32,
            version: 0,
        });
    }
    stats.gain_evals += n as u64;
    stats.heap_pushes += n as u64;
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    // lint:allow(narrowing-cast): k <= n_candidates, which fits the u32 id space
    for round in 0..k as u32 {
        // Pop until the entry is current — the shared lazy-bucket
        // discipline (see `select_decremental_counted`).
        let (c, gain) = loop {
            // lint:allow(panic-path): every untaken candidate re-pushes its current-version entry before this pop
            let top = heap.pop().expect("a current entry exists per candidate");
            let c = top.cand as usize;
            if taken[c] || top.version != version[c] {
                continue;
            }
            break (c, top.gain);
        };
        taken[c] = true;
        // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
        selected.push(c as u32);
        gains.push(gain);
        total += gain;

        // Scatter: each shard covers its users of Ω_c and reports the
        // decrements; shards partition the users, so the per-shard event
        // streams are disjoint slices of the serial decrement stream.
        let global_c = subset.map_or(
            // lint:allow(narrowing-cast): c indexes the candidate array, whose length fits the u32 id space
            c as u32,
            |cands| cands[c],
        );
        let results = scatter_round(shards, states, global_c, pos_of.as_deref(), taken, workers);

        // Gather: apply events in shard order. The count updates commute
        // (integer decrements) and `touched` membership is order-stamped,
        // so any scatter schedule yields the same refreshed gains.
        touched.clear();
        let mut round_max_ns = 0u64;
        for (events, busy_ns) in results {
            gather.busy_ns += busy_ns;
            round_max_ns = round_max_ns.max(busy_ns);
            gather.scatter_events += events.len() as u64;
            for (row, w) in events {
                let ru = row as usize;
                counts[ru * n_classes + w as usize] -= 1;
                stats.gain_updates += 1;
                if stamp[ru] != round {
                    stamp[ru] = round;
                    touched.push(row);
                }
            }
        }
        gather.critical_path_ns += round_max_ns;
        gather.rounds += 1;

        // Refresh: one canonical re-materialisation and one heap push per
        // affected candidate; older entries die by version.
        for &c2 in touched.iter() {
            let c2u = c2 as usize;
            version[c2u] += 1;
            heap.push(Entry {
                gain: canonical_gain_model(&counts[c2u * n_classes..(c2u + 1) * n_classes], model),
                cand: c2,
                version: version[c2u],
            });
            stats.gain_evals += 1;
            stats.heap_pushes += 1;
        }
    }

    stats.covered_users = states
        .iter()
        .map(|s| s.covered.count_ones() as u64)
        .sum::<u64>();
    (
        Solution {
            selected,
            marginal_gains: gains,
            cinf: total,
        },
        stats,
        gather,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::select_decremental_counted;
    use crate::InvertedIndex;

    fn random_sets(seed: u64, n_users: usize, n_cands: usize) -> InfluenceSets {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 4) as u32).collect();
        let omega: Vec<Vec<u32>> = (0..n_cands)
            .map(|_| {
                let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        InfluenceSets::new(omega, f_count)
    }

    /// Encodes the shard-local artifacts so views can borrow from them.
    fn shard_payloads(sets: &InfluenceSets, starts: &[u32]) -> Vec<(u32, Vec<u8>, Vec<u8>)> {
        split_sets(sets, starts)
            .into_iter()
            .enumerate()
            .map(|(s, local)| {
                let inv = InvertedIndex::build(&local, 1);
                (starts[s], local.to_bytes(), inv.to_bytes())
            })
            .collect()
    }

    fn views<'a>(
        payloads: &'a [(u32, Vec<u8>, Vec<u8>)],
        n_candidates: usize,
    ) -> Vec<ShardView<'a>> {
        payloads
            .iter()
            .map(|(base, fwd, inv)| {
                parse_shard_view(*base, fwd, inv, n_candidates as u32).expect("valid shard")
            })
            .collect()
    }

    #[test]
    fn shard_starts_are_balanced_boundaries() {
        assert_eq!(shard_starts(10, 4), vec![0, 3, 6, 8, 10]);
        assert_eq!(shard_starts(3, 8), vec![0, 1, 2, 3]);
        assert_eq!(shard_starts(5, 1), vec![0, 5]);
        assert_eq!(shard_starts(0, 4), vec![0, 0]);
    }

    #[test]
    fn split_rebases_users_and_preserves_rows() {
        let sets = random_sets(7, 23, 6);
        let starts = shard_starts(23, 3);
        let locals = split_sets(&sets, &starts);
        assert_eq!(locals.len(), 3);
        for c in 0..6 {
            let mut stitched: Vec<u32> = Vec::new();
            for (s, l) in locals.iter().enumerate() {
                stitched.extend(l.omega(c).iter().map(|&o| o + starts[s]));
            }
            assert_eq!(stitched, sets.omega(c));
        }
        let stitched_f: Vec<u32> = locals.iter().flat_map(|l| l.f_count.clone()).collect();
        assert_eq!(stitched_f, sets.f_count);
    }

    #[test]
    fn gather_select_is_bit_identical_to_decremental_for_any_sharding() {
        for seed in [3u64, 11, 42] {
            let sets = random_sets(seed, 40, 9);
            let k = 4;
            let (want, want_stats) = select_decremental_counted(&sets, k, 1);
            for n_shards in [1usize, 2, 3, 5, 40] {
                let starts = shard_starts(sets.n_users(), n_shards);
                let payloads = shard_payloads(&sets, &starts);
                let shards = views(&payloads, sets.n_candidates());
                let n_classes = sets.n_weight_classes();
                for threads in [1usize, 4] {
                    let counts =
                        materialise_counts(&shards, sets.n_candidates(), n_classes, threads);
                    let (got, got_stats, gather) = gather_select(
                        &shards,
                        sets.n_candidates(),
                        n_classes,
                        counts,
                        None,
                        sets.total_influences() as u64,
                        k,
                        threads,
                    );
                    assert_eq!(want.selected, got.selected, "seed={seed} shards={n_shards}");
                    let want_bits: Vec<u64> =
                        want.marginal_gains.iter().map(|g| g.to_bits()).collect();
                    let got_bits: Vec<u64> =
                        got.marginal_gains.iter().map(|g| g.to_bits()).collect();
                    assert_eq!(want_bits, got_bits, "seed={seed} shards={n_shards}");
                    assert_eq!(want.cinf.to_bits(), got.cinf.to_bits());
                    assert_eq!(want_stats, got_stats, "seed={seed} shards={n_shards}");
                    assert_eq!(gather.rounds, k as u32);
                    assert_eq!(gather.scatter_events, got_stats.gain_updates);
                }
            }
        }
    }

    #[test]
    fn reused_scratch_is_bit_identical_across_shapes() {
        // One pool serves selections of different candidate counts and
        // shardings back to back — both the clear-in-place path (same
        // shapes) and the rebuild path (shape change) must reproduce the
        // fresh-scratch wrapper exactly.
        let mut scratch = GatherScratch::new();
        for seed in [3u64, 11] {
            for n_shards in [1usize, 3] {
                for _rep in 0..2 {
                    let sets = random_sets(seed, 40, 9);
                    let starts = shard_starts(sets.n_users(), n_shards);
                    let payloads = shard_payloads(&sets, &starts);
                    let shards = views(&payloads, sets.n_candidates());
                    let n_classes = sets.n_weight_classes();
                    let counts = materialise_counts(&shards, sets.n_candidates(), n_classes, 2);
                    let (want, want_stats, _) = gather_select(
                        &shards,
                        sets.n_candidates(),
                        n_classes,
                        counts.clone(),
                        None,
                        sets.total_influences() as u64,
                        4,
                        2,
                    );
                    let (got, got_stats, _) = gather_select_with_scratch(
                        &shards,
                        sets.n_candidates(),
                        n_classes,
                        counts,
                        None,
                        sets.total_influences() as u64,
                        4,
                        2,
                        &mut scratch,
                    );
                    assert_eq!(want.selected, got.selected, "seed={seed} shards={n_shards}");
                    assert_eq!(want.cinf.to_bits(), got.cinf.to_bits());
                    assert_eq!(want_stats, got_stats);
                }
            }
        }
    }

    #[test]
    fn subset_gather_matches_the_subinstance_solve() {
        let sets = random_sets(5, 30, 8);
        let subset: Vec<u32> = vec![1, 3, 4, 6];
        let sub = sets.subset(&subset);
        let (want, want_stats) = select_decremental_counted(&sub, 2, 1);

        let starts = shard_starts(sets.n_users(), 3);
        let payloads = shard_payloads(&sets, &starts);
        let shards = views(&payloads, sets.n_candidates());
        let n_classes = sets.n_weight_classes();
        let full = materialise_counts(&shards, sets.n_candidates(), n_classes, 2);
        let counts = subset_counts(&full, n_classes, &subset);
        let (got, got_stats, _) = gather_select(
            &shards,
            sets.n_candidates(),
            n_classes,
            counts,
            Some(&subset),
            sub.total_influences() as u64,
            2,
            2,
        );
        assert_eq!(want.selected, got.selected);
        assert_eq!(want.cinf.to_bits(), got.cinf.to_bits());
        assert_eq!(want_stats, got_stats);
    }

    #[test]
    fn parse_rejects_structural_corruption() {
        let sets = random_sets(9, 12, 4);
        let starts = shard_starts(12, 2);
        let payloads = shard_payloads(&sets, &starts);
        // Wrong candidate count.
        assert!(parse_shard_view(0, &payloads[0].1, &payloads[0].2, 5).is_err());
        // A forward payload in the inverted slot has a trailing array.
        assert!(parse_shard_view(0, &payloads[0].1, &payloads[0].1, 4).is_err());
        // Truncation anywhere is a typed error, never a panic.
        for cut in 0..payloads[0].1.len() {
            assert!(parse_shard_view(0, &payloads[0].1[..cut], &payloads[0].2, 4).is_err());
        }
    }
}
