//! Competitive-influence arithmetic (paper Definitions 4 and 6).

use crate::InfluenceSets;

/// The competitive weight a candidate captures from one user under the
/// evenly-split model (Equation 1): `cinf(c, o) = 1/(|F_o| + 1)`.
#[inline]
pub fn competitive_weight(f_count: u32) -> f64 {
    1.0 / (f_count as f64 + 1.0)
}

/// `cinf(G)` of a candidate id set against precomputed influence sets
/// (Definition 6). Duplicated candidates are tolerated (set semantics).
pub fn cinf_of_set(sets: &InfluenceSets, g: &[u32]) -> f64 {
    sets.cinf_set(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InfluenceSets;

    #[test]
    fn weight_decreases_with_competition() {
        assert_eq!(competitive_weight(0), 1.0);
        assert_eq!(competitive_weight(1), 0.5);
        assert_eq!(competitive_weight(3), 0.25);
        assert!(competitive_weight(100) < competitive_weight(99));
    }

    #[test]
    fn duplicate_candidates_do_not_double_count() {
        let s = InfluenceSets::new(vec![vec![0, 1]], vec![0, 0]);
        assert_eq!(cinf_of_set(&s, &[0, 0]), cinf_of_set(&s, &[0]));
    }

    #[test]
    fn empty_set_has_zero_cinf() {
        let s = InfluenceSets::new(vec![vec![0]], vec![0]);
        assert_eq!(cinf_of_set(&s, &[]), 0.0);
    }
}
