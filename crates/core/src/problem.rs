use mc2ls_geo::Point;
use mc2ls_influence::{Model, MovingUser, ProbabilityFunction, Sigmoid};

/// An MC²LS instance (paper Definition 7): moving users `Ω`, existing
/// competitor facilities `F`, candidate locations `C`, the number `k` of
/// sites to open, the influence threshold `τ`, and the probability function
/// `PF`.
///
/// Users, facilities and candidates are addressed by their index in the
/// respective vectors throughout the crate (`u32` ids).
#[derive(Debug, Clone)]
pub struct Problem<PF: ProbabilityFunction = Sigmoid> {
    /// Moving users `Ω`.
    pub users: Vec<MovingUser>,
    /// Existing competitor facilities `F` (stationary points).
    pub facilities: Vec<Point>,
    /// Candidate locations `C` (stationary points).
    pub candidates: Vec<Point>,
    /// Number of candidates to select (`k ≥ 1`).
    pub k: usize,
    /// Influence probability threshold `τ ∈ (0, 1)`.
    pub tau: f64,
    /// The distance-based probability function.
    pub pf: PF,
    /// Positions per block of the blocked verification substrate
    /// ([`mc2ls_influence::PositionBlocks`]).
    /// [`BLOCK_SIZE_AUTO`](mc2ls_influence::BLOCK_SIZE_AUTO) (`0`, the
    /// default) derives the size per dataset from the density probe;
    /// [`BLOCK_SIZE_PLAIN`](mc2ls_influence::BLOCK_SIZE_PLAIN) disables
    /// blocking and runs the plain per-position kernel. Decisions are
    /// identical in every mode, only the evaluation count differs.
    pub block_size: usize,
    /// Force the exact `exp` path of the verification kernel, disabling the
    /// bounded-error fast PF evaluation (the `--pf-exact` debugging/A-B
    /// mode). Decisions are identical either way — the fast path falls back
    /// to exact `exp` whenever a decision lands inside its error band — so
    /// this only trades speed for directly-exact arithmetic.
    pub pf_exact: bool,
    /// The competition model splitting a covered user's influence between
    /// the entrant and the user's incumbent facilities
    /// ([`mc2ls_influence::CompetitionModel`]). Defaults to the paper's
    /// [`Model::Cumulative`], whose selections are bit-identical to the
    /// pre-model code; non-submodular models route selection to the exact
    /// branch-and-bound oracle (see `algorithms::run_selector_model`).
    pub model: Model,
}

impl<PF: ProbabilityFunction> Problem<PF> {
    /// Creates and validates an instance.
    ///
    /// # Panics
    /// Panics when `τ ∉ (0,1)`, `k = 0`, `k > |C|`, or any coordinate is
    /// non-finite — all of these indicate a construction bug at the call
    /// site, not a recoverable runtime condition.
    pub fn new(
        users: Vec<MovingUser>,
        facilities: Vec<Point>,
        candidates: Vec<Point>,
        k: usize,
        tau: f64,
        pf: PF,
    ) -> Self {
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
        assert!(k >= 1, "k must be at least 1");
        assert!(
            k <= candidates.len(),
            "k = {k} exceeds the number of candidates ({})",
            candidates.len()
        );
        assert!(
            facilities
                .iter()
                .chain(candidates.iter())
                .all(Point::is_finite),
            "facility/candidate coordinates must be finite"
        );
        assert!(
            users
                .iter()
                .all(|u| u.positions().iter().all(Point::is_finite)),
            "user positions must be finite"
        );
        Problem {
            users,
            facilities,
            candidates,
            k,
            tau,
            pf,
            block_size: mc2ls_influence::BLOCK_SIZE_AUTO,
            pf_exact: false,
            model: Model::Cumulative,
        }
    }

    /// Sets the verification block size
    /// ([`BLOCK_SIZE_AUTO`](mc2ls_influence::BLOCK_SIZE_AUTO) = density
    /// probe, [`BLOCK_SIZE_PLAIN`](mc2ls_influence::BLOCK_SIZE_PLAIN) =
    /// plain per-position kernel).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Forces the exact `exp` path of the verification kernel (see
    /// [`Problem::pf_exact`]).
    pub fn with_pf_exact(mut self, pf_exact: bool) -> Self {
        self.pf_exact = pf_exact;
        self
    }

    /// Sets the competition model (see [`Problem::model`]). Influence
    /// relationships (`Pr_v(o) ≥ τ` coverage) are model-independent; the
    /// model only reweights the selection phase.
    pub fn with_model(mut self, model: Model) -> Self {
        self.model = model;
        self
    }

    /// Number of users `|Ω|`.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of candidates `|C|`.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of existing facilities `|F|`.
    pub fn n_facilities(&self) -> usize {
        self.facilities.len()
    }

    /// Total number of recorded positions across all users.
    pub fn n_positions(&self) -> usize {
        self.users.iter().map(MovingUser::len).sum()
    }

    /// The largest per-user position count `r_max`.
    pub fn r_max(&self) -> usize {
        self.users.iter().map(MovingUser::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vec<MovingUser>, Vec<Point>, Vec<Point>) {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.1, 0.1)]),
            MovingUser::new(vec![Point::new(5.0, 5.0)]),
        ];
        let facilities = vec![Point::new(1.0, 1.0)];
        let candidates = vec![Point::new(0.0, 0.5), Point::new(4.0, 4.0)];
        (users, facilities, candidates)
    }

    #[test]
    fn constructs_and_reports_sizes() {
        let (u, f, c) = tiny();
        let p = Problem::new(u, f, c, 2, 0.5, Sigmoid::paper_default());
        assert_eq!(p.n_users(), 2);
        assert_eq!(p.n_facilities(), 1);
        assert_eq!(p.n_candidates(), 2);
        assert_eq!(p.n_positions(), 3);
        assert_eq!(p.r_max(), 2);
    }

    #[test]
    #[should_panic(expected = "tau must be in (0, 1)")]
    fn rejects_bad_tau() {
        let (u, f, c) = tiny();
        Problem::new(u, f, c, 1, 1.0, Sigmoid::paper_default());
    }

    #[test]
    #[should_panic(expected = "exceeds the number of candidates")]
    fn rejects_k_over_candidates() {
        let (u, f, c) = tiny();
        Problem::new(u, f, c, 3, 0.5, Sigmoid::paper_default());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        let (u, f, c) = tiny();
        Problem::new(u, f, c, 0, 0.5, Sigmoid::paper_default());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_candidate() {
        let (u, f, mut c) = tiny();
        c.push(Point::new(f64::NAN, 0.0));
        Problem::new(u, f, c, 1, 0.5, Sigmoid::paper_default());
    }
}
