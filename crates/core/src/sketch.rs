//! Flajolet–Martin (FM) sketches for approximate coverage counting.
//!
//! The k-CIFP study ([15], the paper's closest prior work) accelerates its
//! greedy selection with FM sketches: each candidate's influenced-user set
//! is summarised as a small bit-sketch, unions become bitwise ORs, and the
//! marginal coverage of a candidate is estimated without materialising set
//! unions. This module reproduces that machinery and layers a
//! sketch-driven greedy on top ([`select_sketched`]); it trades exactness
//! for speed, so it is offered as an *approximate* alternative — the exact
//! greedy in [`crate::greedy`] remains the default.
//!
//! Estimation follows the classic FM analysis: with `m` bitmaps, the
//! estimator is `m/φ · 2^(ΣR/m)` where `R` is the index of the lowest
//! unset bit and `φ ≈ 0.77351`.

use crate::{InfluenceSets, Solution};

/// The FM magic constant `φ`.
const PHI: f64 = 0.77351;

/// Number of bits per bitmap (supports cardinalities far beyond any
/// realistic user count).
const BITS: usize = 64;

/// A multi-bitmap FM sketch of a set of `u32` ids.
///
/// # Examples
/// ```
/// use mc2ls_core::sketch::FmSketch;
///
/// let ids: Vec<u32> = (0..1000).collect();
/// let sketch = FmSketch::of(&ids, 64);
/// let estimate = sketch.estimate();
/// assert!((estimate - 1000.0).abs() / 1000.0 < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmSketch {
    bitmaps: Vec<u64>,
}

impl FmSketch {
    /// An empty sketch with `m` bitmaps (more bitmaps → lower variance;
    /// 16–64 are typical).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "an FM sketch needs at least one bitmap");
        FmSketch {
            bitmaps: vec![0; m],
        }
    }

    /// Number of bitmaps.
    pub fn m(&self) -> usize {
        self.bitmaps.len()
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: u32) {
        for (j, bm) in self.bitmaps.iter_mut().enumerate() {
            let h = hash64(id as u64 ^ ((j as u64) << 32).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let bit = (h.trailing_zeros() as usize).min(BITS - 1);
            *bm |= 1u64 << bit;
        }
    }

    /// Builds a sketch of a whole id slice.
    pub fn of(ids: &[u32], m: usize) -> Self {
        let mut s = FmSketch::new(m);
        for &id in ids {
            s.insert(id);
        }
        s
    }

    /// In-place union (bitwise OR). Sketches must have equal `m`.
    pub fn union_with(&mut self, other: &FmSketch) {
        assert_eq!(self.m(), other.m(), "sketch sizes must match");
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
    }

    /// The union of two sketches.
    pub fn union(&self, other: &FmSketch) -> FmSketch {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Estimated cardinality of the sketched set.
    pub fn estimate(&self) -> f64 {
        let sum_r: usize = self
            .bitmaps
            .iter()
            .map(|&bm| (!bm).trailing_zeros() as usize)
            .sum();
        let mean_r = sum_r as f64 / self.bitmaps.len() as f64;
        2f64.powf(mean_r) / PHI * corrective(self.bitmaps.len())
    }

    /// True when no id has been inserted.
    pub fn is_empty(&self) -> bool {
        self.bitmaps.iter().all(|&b| b == 0)
    }
}

/// Small-`m` corrective factor (the classic analysis assumes large `m`;
/// for the sizes used here a unit factor is adequate).
fn corrective(_m: usize) -> f64 {
    1.0
}

/// SplitMix64 — a strong, cheap 64-bit mixer.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sketch-driven greedy (the k-CIFP acceleration): pick `k` candidates by
/// estimated *marginal user coverage*. Returns an approximate solution —
/// `cinf` is recomputed exactly for the chosen set so the reported value is
/// trustworthy even though the picks are estimate-driven.
///
/// Note: FM sketches count users, so this selector optimises coverage
/// cardinality rather than the competition-weighted `cinf`; on instances
/// where weights vary wildly the exact greedy can choose better sets.
pub fn select_sketched(sets: &InfluenceSets, k: usize, m: usize) -> Solution {
    let n = sets.n_candidates();
    assert!(k <= n, "k = {k} exceeds the number of candidates ({n})");
    let sketches: Vec<FmSketch> = (0..n).map(|c| FmSketch::of(sets.omega(c), m)).collect();

    let mut covered = FmSketch::new(m);
    let mut taken = vec![false; n];
    let mut selected: Vec<u32> = Vec::with_capacity(k);

    for _ in 0..k {
        let covered_est = covered.estimate();
        let mut best: Option<(usize, f64)> = None;
        for c in 0..n {
            if taken[c] {
                continue;
            }
            let gain = (covered.union(&sketches[c]).estimate() - covered_est).max(0.0);
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        // lint:allow(panic-path): the constructor validates k <= n, so an untaken candidate always remains
        let (c, _) = best.expect("k <= n");
        taken[c] = true;
        selected.push(c as u32);
        covered.union_with(&sketches[c]);
    }

    // Report the exact value of the (approximately chosen) set.
    let cinf = sets.cinf_set(&selected);
    let mut gains = Vec::with_capacity(selected.len());
    let mut prev = 0.0;
    for i in 0..selected.len() {
        let v = sets.cinf_set(&selected[..=i]);
        gains.push(v - prev);
        prev = v;
    }
    Solution {
        selected,
        marginal_gains: gains,
        cinf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_cardinality() {
        for n in [10u32, 100, 1000, 10_000] {
            let ids: Vec<u32> = (0..n).collect();
            let s = FmSketch::of(&ids, 64);
            let est = s.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.5, "n={n}: estimate {est} off by {rel}");
        }
    }

    #[test]
    fn empty_sketch_estimates_near_zero() {
        let s = FmSketch::new(32);
        assert!(s.is_empty());
        assert!(s.estimate() < 3.0);
    }

    #[test]
    fn union_equals_sketch_of_union() {
        let a: Vec<u32> = (0..500).collect();
        let b: Vec<u32> = (250..750).collect();
        let sa = FmSketch::of(&a, 32);
        let sb = FmSketch::of(&b, 32);
        let all: Vec<u32> = (0..750).collect();
        assert_eq!(sa.union(&sb), FmSketch::of(&all, 32));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut a = FmSketch::new(16);
        a.insert(42);
        let once = a.clone();
        a.insert(42);
        assert_eq!(a, once);
    }

    #[test]
    fn union_is_monotone_in_estimate() {
        let sa = FmSketch::of(&(0..100).collect::<Vec<_>>(), 32);
        let sb = FmSketch::of(&(100..300).collect::<Vec<_>>(), 32);
        assert!(sa.union(&sb).estimate() >= sa.estimate() - 1e-9);
    }

    #[test]
    fn sketched_greedy_is_competitive_with_exact() {
        // Unit-weight instances: sketched greedy should land within 25% of
        // the exact greedy's coverage on average-size instances.
        let mut seed = 7u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..10 {
            let n_users = 200 + (next() % 300) as usize;
            let n_cands = 10 + (next() % 10) as usize;
            let omega_c: Vec<Vec<u32>> = (0..n_cands)
                .map(|_| {
                    let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 4 == 0).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let sets = InfluenceSets::new(omega_c, vec![0; n_users]);
            let exact = crate::greedy::select(&sets, 4);
            let approx = select_sketched(&sets, 4, 48);
            assert!(
                approx.cinf >= 0.75 * exact.cinf,
                "sketched greedy too weak: {} vs {}",
                approx.cinf,
                exact.cinf
            );
        }
    }

    #[test]
    #[should_panic(expected = "sketch sizes must match")]
    fn union_rejects_mismatched_sizes() {
        let a = FmSketch::new(8);
        let mut b = FmSketch::new(16);
        b.union_with(&a);
    }
}
