//! The rebuild-equivalence guarantee of the incremental update engine:
//! after ANY sequence of inserts, deletes and moves plus a compaction, the
//! engine's influence sets, inverted index and solutions are bit-identical
//! to a from-scratch rebuild of the mutated instance — across thread
//! counts and shard layouts.

use mc2ls_core::algorithms::{influence_sets_threaded, run_selector, Selector};
use mc2ls_core::shard::{
    gather_select, materialise_counts, parse_shard_view, shard_starts, split_sets, ShardView,
};
use mc2ls_core::{
    InfluenceSets, InvertedIndex, IqtConfig, Method, Problem, UpdateEngine, UserUpdate,
};
use mc2ls_geo::Point;
use mc2ls_influence::{MovingUser, Sigmoid};
use proptest::prelude::*;

/// Coordinates tight enough (and τ low enough) that influence sets are
/// non-empty: `Sigmoid::paper_default()` caps PF(0) at 0.5, so sparse
/// instances would test nothing.
fn pt() -> impl Strategy<Value = Point> {
    (-4.0f64..4.0, -4.0f64..4.0).prop_map(|(x, y)| Point::new(x, y))
}

fn trajectory() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..4)
}

/// An abstract mobility event; `user_pick` is resolved against the set of
/// slots alive at application time, so every generated sequence is valid.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Point>),
    Delete(usize),
    Move(usize, Vec<Point>),
}

fn op() -> impl Strategy<Value = Op> {
    // The shim has no `prop_oneof`; a discriminant field picks the variant.
    (0usize..3, 0usize..64, trajectory()).prop_map(|(kind, pick, traj)| match kind {
        0 => Op::Insert(traj),
        1 => Op::Delete(pick),
        _ => Op::Move(pick, traj),
    })
}

fn instance() -> impl Strategy<Value = (Vec<MovingUser>, Vec<Point>, Vec<Point>, Vec<Op>)> {
    (
        prop::collection::vec(trajectory(), 8..20)
            .prop_map(|ts| ts.into_iter().map(MovingUser::new).collect::<Vec<_>>()),
        prop::collection::vec(pt(), 4..10), // candidates
        prop::collection::vec(pt(), 2..5),  // facilities
        prop::collection::vec(op(), 1..12),
    )
}

/// Picks the `pick`-th alive slot (mod the alive count); `None` when every
/// slot is tombstoned.
fn resolve(alive: &[bool], pick: usize) -> Option<u32> {
    let live: Vec<u32> = (0..alive.len() as u32)
        .filter(|&o| alive[o as usize])
        .collect();
    if live.is_empty() {
        None
    } else {
        Some(live[pick % live.len()])
    }
}

/// Replays `ops` against the engine, mirroring the surviving trajectories
/// in the same order compaction will produce: slot order, tombstones
/// dropped, inserts appended.
fn replay(engine: &mut UpdateEngine<Sigmoid>, ops: &[Op]) {
    let mut alive = vec![true; engine.n_slots()];
    for op in ops {
        match op {
            Op::Insert(traj) => {
                engine
                    .apply(UserUpdate::Insert {
                        positions: traj.clone(),
                    })
                    .expect("insert is always valid");
                alive.push(true);
            }
            Op::Delete(pick) => {
                if let Some(user) = resolve(&alive, *pick) {
                    engine.apply(UserUpdate::Delete { user }).expect("alive");
                    alive[user as usize] = false;
                }
            }
            Op::Move(pick, traj) => {
                if let Some(user) = resolve(&alive, *pick) {
                    engine
                        .apply(UserUpdate::Move {
                            user,
                            positions: traj.clone(),
                        })
                        .expect("alive");
                }
            }
        }
    }
}

fn rebuild(
    engine: &UpdateEngine<Sigmoid>,
    problem: &Problem<Sigmoid>,
    threads: usize,
) -> InfluenceSets {
    let fresh = Problem::new(
        engine.users().to_vec(),
        problem.facilities.clone(),
        problem.candidates.clone(),
        problem.k,
        problem.tau,
        problem.pf,
    );
    influence_sets_threaded(&fresh, Method::Iqt(IqtConfig::default()), threads).0
}

/// Shards `sets` into `n_shards` payloads and runs the scatter/gather
/// selector over them.
fn gather_solution(
    sets: &InfluenceSets,
    n_shards: usize,
    k: usize,
    threads: usize,
) -> (Vec<u32>, u64) {
    let starts = shard_starts(sets.n_users(), n_shards);
    let payloads: Vec<(u32, Vec<u8>, Vec<u8>)> = split_sets(sets, &starts)
        .into_iter()
        .enumerate()
        .map(|(s, local)| {
            let inv = InvertedIndex::build(&local, 1);
            (starts[s], local.to_bytes(), inv.to_bytes())
        })
        .collect();
    let shards: Vec<ShardView<'_>> = payloads
        .iter()
        .map(|(base, fwd, inv)| {
            parse_shard_view(*base, fwd, inv, sets.n_candidates() as u32).expect("valid payloads")
        })
        .collect();
    let n_classes = sets.n_weight_classes();
    let counts = materialise_counts(&shards, sets.n_candidates(), n_classes, threads);
    let (sol, _, _) = gather_select(
        &shards,
        sets.n_candidates(),
        n_classes,
        counts,
        None,
        sets.total_influences() as u64,
        k,
        threads,
    );
    (sol.selected, sol.cinf.to_bits())
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    #[test]
    fn random_update_sequences_match_a_from_scratch_rebuild(inst in instance()) {
        let (users, candidates, facilities, ops) = inst;
        let k = 3;
        let problem = Problem::new(
            users,
            facilities,
            candidates,
            k,
            0.25,
            Sigmoid::paper_default(),
        );
        for threads in [1usize, 4] {
            let mut engine = UpdateEngine::new(&problem, threads);
            replay(&mut engine, &ops);
            engine.compact();

            // The influence sets are equal as values, and their inverted
            // indexes serialise to the same bytes.
            let fresh = rebuild(&engine, &problem, threads);
            prop_assert_eq!(engine.sets(), &fresh, "threads={}", threads);
            let fresh_inv = InvertedIndex::build(&fresh, threads);
            prop_assert_eq!(
                engine.inverted().to_bytes(),
                fresh_inv.to_bytes(),
                "threads={}",
                threads
            );

            // The engine's own solve, the rebuilt selectors, and the
            // sharded gather path all pick the same sites with the same
            // cinf bits.
            let (sol, _) = engine.solve(k);
            let (want, _) = run_selector(Selector::Auto, &fresh, k, threads);
            prop_assert_eq!(&sol.selected, &want.selected);
            prop_assert_eq!(sol.cinf.to_bits(), want.cinf.to_bits());
            for n_shards in [1usize, 2] {
                let (selected, cinf_bits) = gather_solution(&fresh, n_shards, k, threads);
                prop_assert_eq!(&selected, &want.selected, "shards={}", n_shards);
                prop_assert_eq!(cinf_bits, want.cinf.to_bits(), "shards={}", n_shards);
            }
        }
    }
}
