//! Blocked ≡ plain: the block-bounded verification kernel is a pure
//! optimisation, so every pipeline must produce the same `InfluenceSets` —
//! and the greedy phase the same `Solution` — whether verification runs
//! through `influences_blocked` (any block size, auto-tuned included, fast
//! or exact PF path, Morton or Hilbert ordering) or the plain per-position
//! kernel (`BLOCK_SIZE_PLAIN`), at any thread count.

use mc2ls_core::algorithms::{
    influence_sets_threaded, solve_threaded, IqtConfig, Method, Selector,
};
use mc2ls_core::Problem;
use mc2ls_geo::Point;
use mc2ls_influence::{
    influences_blocked, BlockOrdering, BlockScratch, MovingUser, PositionBlocks, Sigmoid,
    BLOCK_SIZE_AUTO, BLOCK_SIZE_PLAIN,
};

/// Fixed sizes plus the auto sentinel (`0`), which resolves per dataset.
const BLOCK_SIZES: [usize; 5] = [1, 4, 16, 33, BLOCK_SIZE_AUTO];
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Deterministic xorshift64 stream in [0, 1).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A randomised MC²LS instance; clustering varies with the seed so block
/// MBRs range from tight (decides from bounds) to sprawling (falls through
/// to per-position evaluation).
fn random_problem(seed: u64) -> Problem {
    let mut rng = XorShift::new(seed);
    let n_users = 30 + (rng.next_f64() * 70.0) as usize;
    let n_facs = 5 + (rng.next_f64() * 12.0) as usize;
    let n_cands = 5 + (rng.next_f64() * 12.0) as usize;
    let tau = 0.3 + rng.next_f64() * 0.5;
    let spread = 0.5 + rng.next_f64() * 6.0;
    let users: Vec<MovingUser> = (0..n_users)
        .map(|_| {
            let cx = rng.next_f64() * 25.0;
            let cy = rng.next_f64() * 25.0;
            let r = 1 + (rng.next_f64() * 40.0) as usize;
            MovingUser::new(
                (0..r)
                    .map(|_| Point::new(cx + rng.next_f64() * spread, cy + rng.next_f64() * spread))
                    .collect(),
            )
        })
        .collect();
    let facilities = (0..n_facs)
        .map(|_| Point::new(rng.next_f64() * 25.0, rng.next_f64() * 25.0))
        .collect();
    let candidates = (0..n_cands)
        .map(|_| Point::new(rng.next_f64() * 25.0, rng.next_f64() * 25.0))
        .collect();
    Problem::new(
        users,
        facilities,
        candidates,
        2.min(n_cands),
        tau,
        Sigmoid::paper_default(),
    )
}

fn methods() -> [Method; 3] {
    [
        Method::Baseline,
        Method::KCifp,
        Method::Iqt(IqtConfig::iqt(2.0)),
    ]
}

#[test]
fn influence_sets_identical_blocked_vs_plain() {
    for seed in 1..=12u64 {
        let base = random_problem(seed);
        for method in methods() {
            let plain = base.clone().with_block_size(BLOCK_SIZE_PLAIN);
            let (want, _, _) = influence_sets_threaded(&plain, method, 1);
            for bs in BLOCK_SIZES {
                for pf_exact in [false, true] {
                    let blocked = base.clone().with_block_size(bs).with_pf_exact(pf_exact);
                    for threads in THREAD_COUNTS {
                        let (got, _, _) = influence_sets_threaded(&blocked, method, threads);
                        assert_eq!(
                            want, got,
                            "InfluenceSets diverged: seed={seed} method={method:?} \
                             block_size={bs} pf_exact={pf_exact} threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn solutions_identical_blocked_vs_plain() {
    // End-to-end: same selected candidates, same objective, regardless of
    // which kernel verified the pairs, how many threads ran it, and which
    // selector picked the sites (all selectors are byte-equivalent).
    let selectors = [
        Selector::Greedy,
        Selector::LazyGreedy,
        Selector::Decremental,
        Selector::Auto,
    ];
    for seed in [3u64, 7, 11] {
        let base = random_problem(seed);
        for method in methods() {
            let plain = base.clone().with_block_size(BLOCK_SIZE_PLAIN);
            let want = solve_threaded(&plain, method, Selector::LazyGreedy, 1).solution;
            for bs in [4usize, 16, BLOCK_SIZE_AUTO] {
                let blocked = base.clone().with_block_size(bs);
                for threads in THREAD_COUNTS {
                    for selector in selectors {
                        let got = solve_threaded(&blocked, method, selector, threads).solution;
                        assert_eq!(
                            want.selected, got.selected,
                            "selection diverged: seed={seed} method={method:?} \
                             block_size={bs} threads={threads} selector={selector:?}"
                        );
                        assert_eq!(
                            want.cinf.to_bits(),
                            got.cinf.to_bits(),
                            "objective diverged: seed={seed} method={method:?} \
                             block_size={bs} threads={threads} selector={selector:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn morton_and_hilbert_orderings_agree_on_every_decision() {
    // The ordering is a build-time layout choice: block composition (and
    // hence open rate) may differ, kernel decisions never do.
    for seed in [2u64, 6, 10] {
        let p = random_problem(seed);
        let morton = PositionBlocks::build_ordered(&p.users, 8, BlockOrdering::Morton);
        let hilbert = PositionBlocks::build_ordered(&p.users, 8, BlockOrdering::Hilbert);
        let mut scratch = BlockScratch::new();
        for v in p.candidates.iter().chain(&p.facilities) {
            for o in 0..p.users.len() as u32 {
                let m = influences_blocked(&p.pf, v, &morton, o, p.tau, &mut scratch);
                let h = influences_blocked(&p.pf, v, &hilbert, o, p.tau, &mut scratch);
                assert_eq!(m, h, "seed={seed} user={o} v={v:?}");
            }
        }
    }
}

#[test]
fn blocked_stats_are_thread_count_invariant() {
    // The block counters (like the eval counters before them) are summed
    // per worker, so PruneStats must not depend on the thread count.
    for seed in [5u64, 9] {
        let p = random_problem(seed);
        for method in methods() {
            let (_, want, _) = influence_sets_threaded(&p, method, 1);
            for threads in [2usize, 4, 7] {
                let (_, got, _) = influence_sets_threaded(&p, method, threads);
                assert_eq!(
                    want, got,
                    "PruneStats diverged: seed={seed} method={method:?} threads={threads}"
                );
            }
        }
    }
}
