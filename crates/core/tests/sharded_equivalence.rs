//! The sharded scatter/gather selection must be byte-identical to every
//! unsharded selector, for any shard count, worker count, and subset —
//! the gather correctness guarantee the serving layer builds on.

use mc2ls_core::algorithms::{run_selector, Selector};
use mc2ls_core::shard::{
    gather_select, materialise_counts, parse_shard_view, shard_starts, split_sets, subset_counts,
    ShardView,
};
use mc2ls_core::{InfluenceSets, InvertedIndex};

fn random_sets(seed: u64, n_users: usize, n_cands: usize) -> InfluenceSets {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 5) as u32).collect();
    let omega: Vec<Vec<u32>> = (0..n_cands)
        .map(|_| {
            let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 4 != 0).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    InfluenceSets::new(omega, f_count)
}

fn shard_payloads(sets: &InfluenceSets, n_shards: usize) -> Vec<(u32, Vec<u8>, Vec<u8>)> {
    let starts = shard_starts(sets.n_users(), n_shards);
    split_sets(sets, &starts)
        .into_iter()
        .enumerate()
        .map(|(s, local)| {
            let inv = InvertedIndex::build(&local, 1);
            (starts[s], local.to_bytes(), inv.to_bytes())
        })
        .collect()
}

fn views(payloads: &[(u32, Vec<u8>, Vec<u8>)], n_candidates: usize) -> Vec<ShardView<'_>> {
    payloads
        .iter()
        .map(|(base, fwd, inv)| {
            parse_shard_view(*base, fwd, inv, n_candidates as u32).expect("valid shard payloads")
        })
        .collect()
}

#[test]
fn gather_matches_every_selector_across_shard_and_thread_counts() {
    for seed in [1u64, 8, 21, 77] {
        let sets = random_sets(seed, 60, 12);
        let k = 5;
        for n_shards in [1usize, 2, 4, 7] {
            let payloads = shard_payloads(&sets, n_shards);
            let shards = views(&payloads, sets.n_candidates());
            let n_classes = sets.n_weight_classes();
            for threads in [1usize, 3] {
                let counts = materialise_counts(&shards, sets.n_candidates(), n_classes, threads);
                let (got, _, _) = gather_select(
                    &shards,
                    sets.n_candidates(),
                    n_classes,
                    counts,
                    None,
                    sets.total_influences() as u64,
                    k,
                    threads,
                );
                for selector in [
                    Selector::Greedy,
                    Selector::LazyGreedy,
                    Selector::Decremental,
                    Selector::Auto,
                ] {
                    let (want, _) = run_selector(selector, &sets, k, threads);
                    assert_eq!(
                        want.selected, got.selected,
                        "seed={seed} shards={n_shards} threads={threads} {selector:?}"
                    );
                    let want_bits: Vec<u64> =
                        want.marginal_gains.iter().map(|g| g.to_bits()).collect();
                    let got_bits: Vec<u64> =
                        got.marginal_gains.iter().map(|g| g.to_bits()).collect();
                    assert_eq!(want_bits, got_bits, "seed={seed} {selector:?}");
                    assert_eq!(want.cinf.to_bits(), got.cinf.to_bits(), "seed={seed}");
                }
            }
        }
    }
}

#[test]
fn subset_gather_matches_subinstance_selectors() {
    let sets = random_sets(13, 45, 10);
    let subset: Vec<u32> = vec![0, 2, 5, 6, 9];
    let sub = sets.subset(&subset);
    let payloads = shard_payloads(&sets, 3);
    let shards = views(&payloads, sets.n_candidates());
    let n_classes = sets.n_weight_classes();
    let full = materialise_counts(&shards, sets.n_candidates(), n_classes, 2);
    let counts = subset_counts(&full, n_classes, &subset);
    let (got, _, _) = gather_select(
        &shards,
        sets.n_candidates(),
        n_classes,
        counts,
        Some(&subset),
        sub.total_influences() as u64,
        3,
        2,
    );
    let (want, _) = run_selector(Selector::Auto, &sub, 3, 1);
    assert_eq!(want.selected, got.selected);
    assert_eq!(want.cinf.to_bits(), got.cinf.to_bits());
}
