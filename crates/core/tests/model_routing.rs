//! The submodularity routing rule: a [`CompetitionModel`] declaring
//! `is_submodular() == false` must be routed to the exact branch-and-bound
//! oracle by `run_selector_model` **regardless** of the requested selector
//! (greedy's marginal-gain argument certifies nothing without
//! submodularity), while the shipped submodular models keep running the
//! greedy family. The exact oracle itself must agree with the plain
//! cumulative exact solver when handed the cumulative model.

use mc2ls_core::algorithms::{exact, run_selector_model, Selector};
use mc2ls_core::{greedy, InfluenceSets};
use mc2ls_influence::{CompetitionModel, Model};

/// A complementarity model with mixed-sign class weights: uncontested
/// users are worth `+1` each, but any user already served by an incumbent
/// *costs* the entrant (brand dilution). Not monotone, not submodular.
struct Dilution;

impl CompetitionModel for Dilution {
    fn name(&self) -> &'static str {
        "dilution-test"
    }

    fn class_contribution(&self, w: usize, n: u32) -> f64 {
        if w == 0 {
            f64::from(n)
        } else {
            -0.25 * f64::from(n)
        }
    }

    fn is_submodular(&self) -> bool {
        false
    }
}

/// Candidate 0 covers two clean users; candidate 1 covers one clean and
/// two contested users; candidate 2 covers contested users only.
fn mixed_sets() -> InfluenceSets {
    InfluenceSets::new(
        vec![vec![0, 1], vec![2, 3, 4], vec![3, 4, 5]],
        vec![0, 0, 0, 1, 2, 1],
    )
}

#[test]
fn non_submodular_models_route_to_the_exact_oracle() {
    let sets = mixed_sets();
    let direct = exact::solve_exact_model(&sets, 2, &Dilution);
    for selector in [
        Selector::Greedy,
        Selector::LazyGreedy,
        Selector::Decremental,
        Selector::Auto,
    ] {
        for threads in [1usize, 4] {
            let (sol, stats) = run_selector_model(selector, &sets, 2, threads, &Dilution);
            assert_eq!(direct.selected, sol.selected, "{selector:?} t={threads}");
            assert_eq!(
                direct.cinf.to_bits(),
                sol.cinf.to_bits(),
                "{selector:?} t={threads}"
            );
            assert_eq!(stats.gain_evals, sol.selected.len() as u64);
        }
    }
}

#[test]
fn exact_oracle_may_open_fewer_than_k_sites_under_dilution() {
    // Candidate 1 nets 1 − 0.5 = +0.5 and candidate 0 nets +2, but adding
    // candidate 2 to {0, 1} only brings one *new* contested user (user 5,
    // −0.25): the oracle must stop at the profitable prefix rather than
    // filling k. Under the cumulative model the same k returns k sites.
    let sets = mixed_sets();
    let diluted = exact::solve_exact_model(&sets, 3, &Dilution);
    assert_eq!(diluted.selected, vec![0, 1]);
    assert!((diluted.cinf - 2.5).abs() < 1e-12);
    let cumulative = exact::solve_exact_model(&sets, 3, &Model::Cumulative);
    assert_eq!(cumulative.selected.len(), 3);
}

#[test]
fn exact_model_oracle_matches_the_plain_exact_solver_on_cumulative() {
    let mut seed = 0xd1ce_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _case in 0..25 {
        let n_users = 4 + (next() % 20) as usize;
        let n_cands = 2 + (next() % 8) as usize;
        let f_count: Vec<u32> = (0..n_users).map(|_| (next() % 3) as u32).collect();
        let omega_c: Vec<Vec<u32>> = (0..n_cands)
            .map(|_| {
                let mut v: Vec<u32> = (0..n_users as u32).filter(|_| next() % 3 == 0).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let sets = InfluenceSets::new(omega_c, f_count);
        let k = 1 + (next() as usize % n_cands.min(4));
        let plain = exact::solve_exact(&sets, k);
        let via_model = exact::solve_exact_model(&sets, k, &Model::Cumulative);
        // Enumeration orders differ, so tie-broken *sets* may differ; the
        // optimum value may not.
        assert!(
            (plain.cinf - via_model.cinf).abs() < 1e-9,
            "values diverged: plain={} via_model={}",
            plain.cinf,
            via_model.cinf
        );
        assert!(via_model.selected.len() <= k);
        assert!(
            (sets.cinf_set(&via_model.selected) - via_model.cinf).abs() < 1e-9,
            "reported cinf must match the selected set"
        );
    }
}

#[test]
fn submodular_models_keep_the_greedy_family() {
    // With a submodular model the router must honour the selector: results
    // match the model-dispatched greedy, not necessarily the oracle's
    // at-most-k semantics.
    let sets = mixed_sets();
    let (expected, _) = greedy::select_counted_model(&sets, 3, &Model::Logit);
    for selector in [
        Selector::Greedy,
        Selector::LazyGreedy,
        Selector::Decremental,
    ] {
        let (sol, _) = run_selector_model(selector, &sets, 3, 1, &Model::Logit);
        assert_eq!(expected.selected, sol.selected, "{selector:?}");
        assert_eq!(expected.cinf.to_bits(), sol.cinf.to_bits(), "{selector:?}");
    }
}
