//! All greedy selectors are the same function: `select` (rescan),
//! `select_lazy` (CELF) and `select_decremental` (inverted-CSR gain
//! maintenance) must return **byte-identical** `Solution`s — same selected
//! ids in the same order, bit-equal marginal gains and `cinf` — on any
//! instance, at any worker-thread count. The canonical weight-class gain
//! materialisation (`Σ_w counts[w]/(w+1)` in fixed class order) is what
//! makes this hold exactly, not just within a tolerance.

use mc2ls_core::{greedy, InfluenceSets, InvertedIndex, SelectionStats, Solution};
use mc2ls_influence::Model;
use proptest::prelude::*;

const THREADS: [usize; 2] = [1, 4];

/// Normalises raw generated material into a valid instance: user ids are
/// folded into range, lists sorted + deduplicated.
fn build_sets(f_count: Vec<u32>, raw_lists: Vec<Vec<u32>>) -> InfluenceSets {
    let n_users = f_count.len() as u32;
    let omega_c: Vec<Vec<u32>> = raw_lists
        .into_iter()
        .map(|raw| {
            let mut list: Vec<u32> = raw.into_iter().map(|x| x % n_users).collect();
            list.sort_unstable();
            list.dedup();
            list
        })
        .collect();
    let sets = InfluenceSets::new(omega_c, f_count);
    // Debug-mode structural sanitizer: a malformed CSR would invalidate
    // every equivalence assertion below.
    sets.validate();
    sets
}

/// Runs every selector at every thread count and asserts byte-identity
/// against the rescan reference. Returns the reference solution.
fn assert_all_selectors_identical(sets: &InfluenceSets, k: usize) -> Solution {
    // Sanitize the derived structures the selectors run on.
    InvertedIndex::build(sets, 3).validate();
    let (reference, _) = greedy::select_counted(sets, k);
    sets.covered_by(&reference.selected).validate();
    let ref_bits: Vec<u64> = reference
        .marginal_gains
        .iter()
        .map(|g| g.to_bits())
        .collect();
    let check = |name: &str, got: Solution| {
        assert_eq!(reference.selected, got.selected, "{name}: selected ids");
        let got_bits: Vec<u64> = got.marginal_gains.iter().map(|g| g.to_bits()).collect();
        assert_eq!(ref_bits, got_bits, "{name}: marginal gain bits");
        assert_eq!(
            reference.cinf.to_bits(),
            got.cinf.to_bits(),
            "{name}: cinf bits"
        );
    };
    for threads in THREADS {
        check(
            &format!("celf t={threads}"),
            greedy::select_lazy_threaded(sets, k, threads),
        );
        check(
            &format!("decremental t={threads}"),
            greedy::select_decremental_threaded(sets, k, threads),
        );
    }
    // Trait-dispatched cumulative model: routing the same selection through
    // the CompetitionModel trait with an explicit `Model::Cumulative` must
    // not move a bit relative to the default paths above.
    check(
        "rescan via trait",
        greedy::select_counted_model(sets, k, &Model::Cumulative).0,
    );
    for threads in THREADS {
        check(
            &format!("celf via trait t={threads}"),
            greedy::select_lazy_counted_model(sets, k, threads, &Model::Cumulative).0,
        );
        check(
            &format!("decremental via trait t={threads}"),
            greedy::select_decremental_counted_model(sets, k, threads, &Model::Cumulative).0,
        );
    }
    reference
}

/// The counted variants' stats must not depend on the thread count.
fn assert_stats_thread_invariant(sets: &InfluenceSets, k: usize) {
    let stats_at = |threads: usize| -> (SelectionStats, SelectionStats) {
        (
            greedy::select_lazy_counted(sets, k, threads).1,
            greedy::select_decremental_counted(sets, k, threads).1,
        )
    };
    assert_eq!(stats_at(1), stats_at(4), "stats diverged at t=4");
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    /// Randomised instances: mixed weight classes, uneven coverage.
    #[test]
    fn selectors_agree_on_random_instances(
        f_count in prop::collection::vec(0u32..4, 1..24),
        raw_lists in prop::collection::vec(prop::collection::vec(0u32..1000, 0..30), 1..10),
        k_raw in 0usize..1000,
    ) {
        let sets = build_sets(f_count, raw_lists);
        let k = 1 + k_raw % sets.n_candidates();
        assert_all_selectors_identical(&sets, k);
        assert_stats_thread_invariant(&sets, k);
    }

    /// Tie-heavy instances: one weight class only and many duplicated
    /// candidate lists, so nearly every round is decided by the
    /// smallest-id tie-break.
    #[test]
    fn selectors_agree_on_tie_heavy_instances(
        n_users_raw in 1u32..12,
        raw_lists in prop::collection::vec(prop::collection::vec(0u32..1000, 0..8), 2..8),
        dup_from in prop::collection::vec(0usize..1000, 2..8),
    ) {
        let f_count = vec![0u32; n_users_raw as usize];
        let mut lists = raw_lists;
        // Overwrite a suffix of the candidates with copies of earlier ones.
        for i in 1..lists.len() {
            if i < dup_from.len() && dup_from[i] % 2 == 0 {
                lists[i] = lists[dup_from[i] % i].clone();
            }
        }
        let sets = build_sets(f_count, lists);
        let k = sets.n_candidates(); // exhaust every tie
        assert_all_selectors_identical(&sets, k);
    }

    /// One dominant candidate covers every user, so from round 2 on every
    /// remaining gain is exactly 0.0 — the all-covered regime where stale
    /// heap entries and empty decrement phases must still agree.
    #[test]
    fn selectors_agree_when_first_pick_covers_everything(
        f_count in prop::collection::vec(0u32..3, 1..16),
        raw_lists in prop::collection::vec(prop::collection::vec(0u32..1000, 0..10), 1..6),
    ) {
        let n_users = f_count.len() as u32;
        let mut lists = raw_lists;
        lists.push((0..n_users).collect()); // the dominant candidate
        let sets = build_sets(f_count, lists);
        let k = sets.n_candidates();
        let sol = assert_all_selectors_identical(&sets, k);
        // Sanity: once everything is covered the remaining gains are +0.0.
        let full = sets.cinf_set(&(0..sets.n_candidates() as u32).collect::<Vec<u32>>());
        prop_assert!((sol.cinf - full).abs() < 1e-12);
    }

    /// Instances with empty Ω lists sprinkled in: zero-gain candidates must
    /// rank purely by id in every implementation.
    #[test]
    fn selectors_agree_with_empty_omegas(
        f_count in prop::collection::vec(0u32..3, 1..16),
        raw_lists in prop::collection::vec(prop::collection::vec(0u32..1000, 0..6), 1..6),
        empty_at in prop::collection::vec(0usize..1000, 1..4),
    ) {
        let mut lists = raw_lists;
        for &pos in &empty_at {
            lists.insert(pos % (lists.len() + 1), Vec::new());
        }
        let sets = build_sets(f_count, lists);
        let k = sets.n_candidates();
        assert_all_selectors_identical(&sets, k);
    }
}

/// End-to-end geometric regression for the competition-model refactor: the
/// full pipeline (verification → influence sets → selection) under an
/// explicit `Model::Cumulative` is byte-identical to the default dispatch,
/// at every verification block size × thread count × selector.
#[test]
fn trait_dispatched_cumulative_is_byte_identical_across_block_sizes() {
    use mc2ls_core::algorithms::{solve_threaded, Method, Selector};
    use mc2ls_core::{IqtConfig, Problem};
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid, BLOCK_SIZE_AUTO, BLOCK_SIZE_PLAIN};

    let mut seed = 0x5eed_cafe_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut point = {
        let mut draw = move || (next() % 10_000) as f64 / 1000.0;
        move || Point::new(draw(), draw())
    };
    let users: Vec<MovingUser> = (0..60)
        .map(|i| MovingUser::new((0..1 + i % 4).map(|_| point()).collect()))
        .collect();
    let facilities: Vec<Point> = (0..8).map(|_| point()).collect();
    let candidates: Vec<Point> = (0..12).map(|_| point()).collect();
    let problem = Problem::new(
        users,
        facilities,
        candidates,
        4,
        0.5,
        Sigmoid::paper_default(),
    );

    let reference = solve_threaded(
        &problem,
        Method::Iqt(IqtConfig::default()),
        Selector::Greedy,
        1,
    )
    .solution;
    assert!(!reference.selected.is_empty());
    for block_size in [BLOCK_SIZE_PLAIN, 4, BLOCK_SIZE_AUTO] {
        for threads in THREADS {
            for selector in [
                Selector::Greedy,
                Selector::LazyGreedy,
                Selector::Decremental,
            ] {
                for explicit in [false, true] {
                    let mut p = problem.clone().with_block_size(block_size);
                    if explicit {
                        p = p.with_model(Model::Cumulative);
                    }
                    let got =
                        solve_threaded(&p, Method::Iqt(IqtConfig::default()), selector, threads)
                            .solution;
                    let label = format!(
                        "block_size={block_size} t={threads} {selector:?} explicit={explicit}"
                    );
                    assert_eq!(reference.selected, got.selected, "{label}: selected");
                    let ref_bits: Vec<u64> = reference
                        .marginal_gains
                        .iter()
                        .map(|g| g.to_bits())
                        .collect();
                    let got_bits: Vec<u64> =
                        got.marginal_gains.iter().map(|g| g.to_bits()).collect();
                    assert_eq!(ref_bits, got_bits, "{label}: gain bits");
                    assert_eq!(
                        reference.cinf.to_bits(),
                        got.cinf.to_bits(),
                        "{label}: cinf bits"
                    );
                }
            }
        }
    }
}

#[test]
fn selectors_agree_on_degenerate_edges() {
    // No users at all.
    let no_users = InfluenceSets::new(vec![vec![], vec![]], vec![]);
    assert_all_selectors_identical(&no_users, 2);
    // A single candidate, k = 0 and k = 1.
    let single = InfluenceSets::new(vec![vec![0, 1]], vec![0, 1]);
    assert_all_selectors_identical(&single, 0);
    assert_all_selectors_identical(&single, 1);
}
