//! Parallel ≡ serial: the chunked IQuad-tree pipeline and the parallel
//! baseline must reproduce the serial results **bit-identically** — same
//! `Ω_c` (CSR arrays included), same `|F_o|`, same `PruneStats` — for every
//! thread count, because chunking only moves work between threads, never
//! changes it.

use mc2ls_core::algorithms::{baseline, iqt, IqtConfig};
use mc2ls_core::parallel::baseline_influence_sets_parallel;
use mc2ls_core::{greedy, InfluenceSets, Problem};
use mc2ls_geo::Point;
use mc2ls_influence::{MovingUser, Sigmoid};

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 7, 16];

/// Deterministic xorshift64 stream in [0, 1).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A randomised MC²LS instance; sizes and clustering vary with the seed so
/// the chunk boundaries land differently in every case.
fn random_problem(seed: u64) -> Problem {
    let mut rng = XorShift::new(seed);
    let n_users = 30 + (rng.next_f64() * 70.0) as usize;
    let n_facs = 5 + (rng.next_f64() * 12.0) as usize;
    let n_cands = 5 + (rng.next_f64() * 12.0) as usize;
    let tau = 0.3 + rng.next_f64() * 0.5;
    let users: Vec<MovingUser> = (0..n_users)
        .map(|_| {
            let cx = rng.next_f64() * 25.0;
            let cy = rng.next_f64() * 25.0;
            let r = 1 + (rng.next_f64() * 8.0) as usize;
            MovingUser::new(
                (0..r)
                    .map(|_| Point::new(cx + rng.next_f64() * 2.0, cy + rng.next_f64() * 2.0))
                    .collect(),
            )
        })
        .collect();
    let facilities = (0..n_facs)
        .map(|_| Point::new(rng.next_f64() * 25.0, rng.next_f64() * 25.0))
        .collect();
    let candidates = (0..n_cands)
        .map(|_| Point::new(rng.next_f64() * 25.0, rng.next_f64() * 25.0))
        .collect();
    Problem::new(
        users,
        facilities,
        candidates,
        2.min(n_cands),
        tau,
        Sigmoid::paper_default(),
    )
}

#[test]
fn iqt_parallel_is_bit_identical_across_20_instances() {
    for seed in 1..=20u64 {
        let p = random_problem(seed);
        for config in [
            IqtConfig::iqt_c(2.0),
            IqtConfig::iqt(2.0),
            IqtConfig::iqt_pino(2.0),
        ] {
            let (serial_sets, serial_stats, _) = iqt::influence_sets(&p, &config);
            for threads in THREAD_COUNTS {
                let (par_sets, par_stats, _) = iqt::influence_sets_parallel(&p, &config, threads);
                assert_eq!(
                    serial_sets, par_sets,
                    "InfluenceSets diverged: seed={seed} threads={threads}"
                );
                assert_eq!(
                    serial_stats, par_stats,
                    "PruneStats diverged: seed={seed} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn baseline_parallel_is_bit_identical_across_20_instances() {
    for seed in 100..=120u64 {
        let p = random_problem(seed);
        let (serial_sets, _, _) = baseline::influence_sets(&p);
        for threads in THREAD_COUNTS {
            let par_sets = baseline_influence_sets_parallel(&p, threads);
            assert_eq!(
                serial_sets, par_sets,
                "baseline diverged: seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn parallel_sets_drive_identical_selections() {
    // End-to-end: the greedy phase consumes the parallel sets and must pick
    // the same candidates with the same objective value — for every
    // selector, including the decremental one running its own threaded
    // inverted-index build.
    for seed in [3u64, 8, 14] {
        let p = random_problem(seed);
        let (serial_sets, _, _) = iqt::influence_sets(&p, &IqtConfig::iqt(2.0));
        let want = greedy::select_lazy(&serial_sets, p.k);
        for threads in [2usize, 7] {
            let (par_sets, _, _) = iqt::influence_sets_parallel(&p, &IqtConfig::iqt(2.0), threads);
            let got = greedy::select_lazy(&par_sets, p.k);
            assert_eq!(want.selected, got.selected, "seed={seed} threads={threads}");
            assert!((want.cinf - got.cinf).abs() < 1e-15, "seed={seed}");
            let dec = greedy::select_decremental_threaded(&par_sets, p.k, threads);
            assert_eq!(
                want.selected, dec.selected,
                "decremental diverged: seed={seed} threads={threads}"
            );
            assert_eq!(
                want.cinf.to_bits(),
                dec.cinf.to_bits(),
                "decremental cinf bits diverged: seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn csr_round_trip_on_pipeline_output() {
    // The CSR layout must reconstruct losslessly from both directions:
    // nested → CSR → nested and CSR → nested → CSR.
    for seed in [2u64, 9, 17] {
        let p = random_problem(seed);
        let (sets, _, _) = iqt::influence_sets(&p, &IqtConfig::iqt(2.0));
        let nested = sets.to_nested();
        let rebuilt = InfluenceSets::new(nested.clone(), sets.f_count.clone());
        assert_eq!(rebuilt, sets, "nested round trip, seed={seed}");
        assert_eq!(rebuilt.to_nested(), nested, "seed={seed}");
        let (offsets, user_ids) = sets.csr();
        let from_csr =
            InfluenceSets::from_csr(offsets.to_vec(), user_ids.to_vec(), sets.f_count.clone());
        assert_eq!(from_csr, sets, "CSR round trip, seed={seed}");
        // Per-candidate slices agree with the nested view.
        for (c, list) in nested.iter().enumerate() {
            assert_eq!(sets.omega(c), list.as_slice(), "candidate {c} seed={seed}");
        }
    }
}
