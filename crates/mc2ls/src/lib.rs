//! # MC²LS — Collective Location Selection in Competition
//!
//! A from-scratch Rust implementation of *"MC²LS: Towards Efficient
//! Collective Location Selection in Competition"* (Wang et al., TKDE 2024 /
//! ICDE 2025): select `k` candidate sites that collectively capture the
//! largest market share of **moving** users against **existing competitor
//! facilities**, under the cumulative-probability influence model.
//!
//! This facade crate re-exports the whole workspace. The typical flow:
//!
//! ```
//! use mc2ls::prelude::*;
//!
//! // A toy city: three users, one competitor, three candidate sites.
//! let users = vec![
//!     MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.2, 0.1)]),
//!     MovingUser::new(vec![Point::new(4.0, 4.0), Point::new(4.1, 4.2)]),
//!     MovingUser::new(vec![Point::new(0.1, 0.3), Point::new(0.0, 0.2)]),
//! ];
//! let facilities = vec![Point::new(0.1, 0.1)];
//! let candidates = vec![Point::new(0.0, 0.1), Point::new(4.0, 4.1), Point::new(9.0, 9.0)];
//!
//! let problem = Problem::new(users, facilities, candidates, 2, 0.5,
//!                            Sigmoid::paper_default());
//! let report = solve(&problem, Method::Iqt(IqtConfig::default()));
//! assert_eq!(report.solution.selected.len(), 2);
//! assert!(report.solution.cinf > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`geo`] | points, rectangles, circles, squares, projections |
//! | [`influence`] | `PF` functions, cumulative probability, `mMR`/`NIR`/`η` |
//! | [`index`] | R-tree, quad-tree, grid, and the paper's IQuad-tree |
//! | [`core`] | the MC²LS problem, pruning rules, Baseline / k-CIFP / IQT / exact algorithms |
//! | [`data`] | calibrated dataset generators, SNAP loaders, samplers, persistence |
//! | [`social`] | geo-social extension: friendship graphs, cascades, MC²LS-S |
//! | [`roadnet`] | road networks, Dijkstra, network-distance MC²LS |
//! | [`temporal`] | time-slot-aware MC²LS |
//! | [`viz`] | SVG maps of datasets and solutions |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mc2ls_core as core;
pub use mc2ls_data as data;
pub use mc2ls_geo as geo;
pub use mc2ls_index as index;
pub use mc2ls_influence as influence;
pub use mc2ls_roadnet as roadnet;
pub use mc2ls_social as social;
pub use mc2ls_temporal as temporal;
pub use mc2ls_viz as viz;

/// The one-import convenience module.
pub mod prelude {
    pub use mc2ls_core::algorithms::{
        influence_sets_threaded, resolve_selector, solve_threaded, solve_with, Selector,
    };
    pub use mc2ls_core::{
        algorithms::exact::solve_exact, cinf_of_set, solve, InvertedIndex, IqtConfig, Method,
        Problem, RunReport, SelectionStats, Solution,
    };
    pub use mc2ls_data::{loader, presets, sampler, Dataset, DatasetConfig};
    pub use mc2ls_geo::{Circle, Point, Rect, Square};
    pub use mc2ls_index::{IQuadTree, RTree};
    pub use mc2ls_influence::{
        auto_block_size, cumulative_probability, influences, influences_blocked,
        resolve_block_size, BlockOrdering, BlockScratch, Model, MovingUser, PositionBlocks,
        ProbabilityFunction, Sigmoid, BLOCK_SIZE_AUTO, BLOCK_SIZE_PLAIN, DEFAULT_BLOCK_SIZE,
    };
}
