//! Time-aware MC²LS.
//!
//! The CLS literature the paper surveys includes time-aware variants
//! (TAILOR [3]: users and influence vary across time slots; [28]: facility
//! sets change over time). This crate extends MC²LS accordingly:
//!
//! * every user position carries a **time slot** (e.g. morning / noon /
//!   evening);
//! * a user is influenced by a site *in slot t* when the cumulative
//!   probability over its slot-`t` positions reaches `τ` — a commuter can
//!   be reachable near the office at noon but not at night;
//! * the objective is the slot-weighted competitive collective influence
//!   `Σ_t w_t · cinf_t(G)` where each slot applies the evenly-split
//!   competition model to its own influence relationships.
//!
//! The objective is a non-negative weighted sum of submodular functions,
//! hence submodular: the greedy keeps its `(1 − 1/e)` guarantee, and every
//! slot's influence relationships are computed with the same IQuad-tree
//! pipeline as the static problem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mc2ls_core::{algorithms, InfluenceSets, IqtConfig, Method, Problem, Solution};
use mc2ls_geo::Point;
use mc2ls_influence::{MovingUser, ProbabilityFunction};
use serde::{Deserialize, Serialize};

/// A user whose positions are tagged with time slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimedUser {
    positions: Vec<(Point, u32)>,
}

impl TimedUser {
    /// Builds a timed user from `(position, slot)` records.
    ///
    /// # Panics
    /// Panics when `positions` is empty.
    pub fn new(positions: Vec<(Point, u32)>) -> Self {
        assert!(!positions.is_empty(), "a timed user needs positions");
        TimedUser { positions }
    }

    /// All records.
    pub fn records(&self) -> &[(Point, u32)] {
        &self.positions
    }

    /// The positions recorded in `slot`.
    pub fn positions_in(&self, slot: u32) -> Vec<Point> {
        self.positions
            .iter()
            .filter(|&&(_, s)| s == slot)
            .map(|&(p, _)| p)
            .collect()
    }

    /// Largest slot id used (`None` for no positions — impossible by
    /// construction).
    pub fn max_slot(&self) -> u32 {
        self.positions.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }
}

/// A time-aware MC²LS instance.
#[derive(Debug, Clone)]
pub struct TemporalProblem<PF: ProbabilityFunction + Clone = mc2ls_influence::Sigmoid> {
    /// Users with slot-tagged positions.
    pub users: Vec<TimedUser>,
    /// Competitor facilities (static across slots).
    pub facilities: Vec<Point>,
    /// Candidate sites.
    pub candidates: Vec<Point>,
    /// Number of sites to open.
    pub k: usize,
    /// Influence threshold.
    pub tau: f64,
    /// Distance-probability function.
    pub pf: PF,
    /// Number of time slots (slot ids are `0..n_slots`).
    pub n_slots: u32,
    /// Per-slot weights (e.g. footfall share); must sum to a positive
    /// value; `empty` means uniform.
    pub slot_weights: Vec<f64>,
}

/// Per-slot influence relationships plus the id mapping back to global
/// users (slots only contain the users active in them).
#[derive(Debug, Clone)]
pub struct TemporalInfluence {
    /// Influence sets per slot (user ids are *slot-local*).
    pub per_slot: Vec<InfluenceSets>,
    /// `global_ids[t][local] = global user id`.
    pub global_ids: Vec<Vec<u32>>,
    /// Normalised slot weights.
    pub weights: Vec<f64>,
}

impl<PF: ProbabilityFunction + Clone> TemporalProblem<PF> {
    /// Validates and computes the per-slot influence relationships.
    pub fn influence(&self) -> TemporalInfluence {
        assert!(self.n_slots >= 1, "need at least one slot");
        assert!(
            self.slot_weights.is_empty() || self.slot_weights.len() == self.n_slots as usize,
            "slot weights must be empty or one per slot"
        );
        assert!(
            self.users.iter().all(|u| u.max_slot() < self.n_slots),
            "a position references a slot beyond n_slots"
        );
        let weights = if self.slot_weights.is_empty() {
            vec![1.0 / self.n_slots as f64; self.n_slots as usize]
        } else {
            let sum: f64 = self.slot_weights.iter().sum();
            assert!(sum > 0.0, "slot weights must sum to a positive value");
            self.slot_weights.iter().map(|w| w / sum).collect()
        };

        let mut per_slot = Vec::with_capacity(self.n_slots as usize);
        let mut global_ids = Vec::with_capacity(self.n_slots as usize);
        for t in 0..self.n_slots {
            let mut ids: Vec<u32> = Vec::new();
            let mut slot_users: Vec<MovingUser> = Vec::new();
            for (g, u) in self.users.iter().enumerate() {
                let ps = u.positions_in(t);
                if !ps.is_empty() {
                    ids.push(g as u32);
                    slot_users.push(MovingUser::new(ps));
                }
            }
            if slot_users.is_empty() {
                per_slot.push(InfluenceSets::new(
                    vec![Vec::new(); self.candidates.len()],
                    Vec::new(),
                ));
                global_ids.push(ids);
                continue;
            }
            let problem = Problem::new(
                slot_users,
                self.facilities.clone(),
                self.candidates.clone(),
                self.k,
                self.tau,
                self.pf.clone(),
            );
            let (sets, _, _) =
                algorithms::influence_sets(&problem, Method::Iqt(IqtConfig::default()));
            per_slot.push(sets);
            global_ids.push(ids);
        }
        TemporalInfluence {
            per_slot,
            global_ids,
            weights,
        }
    }
}

/// The slot-weighted objective value of a candidate set.
pub fn temporal_cinf(influence: &TemporalInfluence, set: &[u32]) -> f64 {
    influence
        .per_slot
        .iter()
        .zip(&influence.weights)
        .map(|(sets, w)| w * sets.cinf_set(set))
        .sum()
}

/// Greedy selection of `k` candidates maximising the slot-weighted
/// competitive influence.
pub fn solve_temporal<PF: ProbabilityFunction + Clone>(problem: &TemporalProblem<PF>) -> Solution {
    let influence = problem.influence();
    let n = problem.candidates.len();
    let k = problem.k;
    assert!(k <= n, "k exceeds the number of candidates");

    // Coverage state per slot (slot-local indices).
    let mut covered: Vec<Vec<bool>> = influence
        .per_slot
        .iter()
        .map(|s| vec![false; s.n_users()])
        .collect();
    let mut taken = vec![false; n];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut total = 0.0;

    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // c indexes parallel arrays
        for c in 0..n {
            if taken[c] {
                continue;
            }
            let mut gain = 0.0;
            for ((sets, cov), w) in influence
                .per_slot
                .iter()
                .zip(&covered)
                .zip(&influence.weights)
            {
                for &o in sets.omega(c) {
                    if !cov[o as usize] {
                        gain += w * sets.weight(o);
                    }
                }
            }
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        // lint:allow(panic-path): snapshot problems validate k <= n, so an untaken candidate remains
        let (c, gain) = best.expect("k <= n");
        taken[c] = true;
        selected.push(c as u32);
        gains.push(gain);
        total += gain;
        for (sets, cov) in influence.per_slot.iter().zip(&mut covered) {
            for &o in sets.omega(c) {
                cov[o as usize] = true;
            }
        }
    }

    Solution {
        selected,
        marginal_gains: gains,
        cinf: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_influence::Sigmoid;

    /// A commuter scenario: users near site A in slot 0 (work hours) and
    /// near site B in slot 1 (home).
    fn commuter_problem(slot_weights: Vec<f64>) -> TemporalProblem {
        let work = Point::new(0.0, 0.0);
        let home = Point::new(10.0, 10.0);
        let users: Vec<TimedUser> = (0..6)
            .map(|i| {
                let dx = i as f64 * 0.05;
                TimedUser::new(vec![
                    (work.translated(dx, 0.0), 0),
                    (work.translated(dx, 0.1), 0),
                    (home.translated(dx, 0.0), 1),
                    (home.translated(dx, 0.1), 1),
                ])
            })
            .collect();
        TemporalProblem {
            users,
            facilities: vec![],
            candidates: vec![work.translated(0.1, 0.0), home.translated(0.1, 0.0)],
            k: 1,
            tau: 0.5,
            pf: Sigmoid::paper_default(),
            n_slots: 2,
            slot_weights,
        }
    }

    #[test]
    fn slot_partition_is_correct() {
        let u = TimedUser::new(vec![
            (Point::new(0.0, 0.0), 0),
            (Point::new(1.0, 0.0), 1),
            (Point::new(2.0, 0.0), 0),
        ]);
        assert_eq!(u.positions_in(0).len(), 2);
        assert_eq!(u.positions_in(1).len(), 1);
        assert!(u.positions_in(2).is_empty());
        assert_eq!(u.max_slot(), 1);
    }

    #[test]
    fn uniform_weights_tie_break_on_id() {
        let sol = solve_temporal(&commuter_problem(vec![]));
        // Both sites capture everyone in their slot with weight 1/2 each:
        // tie, so the smaller id (work site) wins.
        assert_eq!(sol.selected, vec![0]);
        assert!((sol.cinf - 3.0).abs() < 1e-9); // 6 users × weight ½
    }

    #[test]
    fn slot_weights_steer_the_pick() {
        // Evening traffic dominates: the home site must win.
        let sol = solve_temporal(&commuter_problem(vec![0.2, 0.8]));
        assert_eq!(sol.selected, vec![1]);
        assert!((sol.cinf - 6.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn objective_matches_temporal_cinf() {
        let p = commuter_problem(vec![0.3, 0.7]);
        let influence = p.influence();
        let sol = solve_temporal(&p);
        assert!((temporal_cinf(&influence, &sol.selected) - sol.cinf).abs() < 1e-9);
    }

    #[test]
    fn k2_covers_both_slots() {
        let mut p = commuter_problem(vec![]);
        p.k = 2;
        let sol = solve_temporal(&p);
        assert_eq!(sol.selected.len(), 2);
        assert!((sol.cinf - 6.0).abs() < 1e-9); // full coverage in both slots
    }

    #[test]
    fn marginal_gains_non_increasing() {
        let mut p = commuter_problem(vec![0.6, 0.4]);
        p.k = 2;
        let sol = solve_temporal(&p);
        assert!(sol.marginal_gains[0] >= sol.marginal_gains[1] - 1e-12);
    }

    #[test]
    #[should_panic(expected = "slot beyond n_slots")]
    fn rejects_out_of_range_slot() {
        let mut p = commuter_problem(vec![]);
        p.n_slots = 1;
        p.influence();
    }

    #[test]
    fn competition_is_per_slot() {
        // A facility near the work cluster competes only in slot 0.
        let mut p = commuter_problem(vec![]);
        p.facilities = vec![Point::new(0.05, 0.05)];
        let influence = p.influence();
        // Slot 0: each user split with one facility → weight 1/2.
        let w0 = influence.per_slot[0].cinf_candidate(0);
        assert!((w0 - 3.0).abs() < 1e-9); // 6 users × ½
                                          // Slot 1: home candidate uncontested.
        let w1 = influence.per_slot[1].cinf_candidate(1);
        assert!((w1 - 6.0).abs() < 1e-9);
    }
}
