//! Geo-social extension of MC²LS (the paper's §VIII future work:
//! "extended solution towards MC²LS in social network scenarios,
//! incorporating social influence and users' interests").
//!
//! The extension follows the geo-social location-selection literature the
//! paper cites ([19], [26], [33]): users form a **social graph**; a user
//! *physically* influenced by a selected site may further *activate*
//! friends through word-of-mouth. The extended objective counts both:
//!
//! ```text
//! scinf(G) = E[ Σ_{o ∈ activated(Ω_G)} 1/(|F_o|+1) ]
//! ```
//!
//! where `activated(·)` closes the physically influenced seed set under a
//! propagation model:
//!
//! * [`PropagationModel::OneHop`] — a friend of an influenced user is
//!   activated when the (deterministic) edge weight is at least the
//!   activation threshold; cheap and deterministic.
//! * [`PropagationModel::IndependentCascade`] — classic IC semantics
//!   estimated over seeded Monte-Carlo live-edge samples; the expected
//!   coverage is submodular, so the greedy retains its `(1 − 1/e)` bound
//!   *with respect to the sampled objective*.
//!
//! Interests are modelled as per-user affinities in `[0, 1]` that scale a
//! user's weight — a user uninterested in the business category
//! contributes proportionally less market share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cascade;
mod graph;
mod problem;

pub use cascade::{activate_one_hop, LiveEdgeSample};
pub use graph::SocialGraph;
pub use problem::{solve_social, PropagationModel, SocialProblem, SocialSolution};
