//! Undirected weighted social graphs over user ids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An undirected social graph: node `u` is the user with id `u`; each edge
/// carries an influence probability/weight in `(0, 1]`.
///
/// Stored as symmetric adjacency lists sorted by neighbour id; parallel
/// edges are rejected at construction.
///
/// # Examples
/// ```
/// use mc2ls_social::SocialGraph;
///
/// let g = SocialGraph::from_edges(3, &[(0, 1, 0.8), (1, 2, 0.4)]);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[(0, 0.8), (2, 0.4)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialGraph {
    adj: Vec<Vec<(u32, f32)>>,
}

impl SocialGraph {
    /// An edgeless graph over `n` users.
    pub fn empty(n: usize) -> Self {
        SocialGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from undirected weighted edges.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, weights outside
    /// `(0, 1]`, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f32)]) -> Self {
        let mut g = SocialGraph::empty(n);
        for &(a, b, w) in edges {
            g.add_edge(a, b, w);
        }
        g
    }

    /// Adds one undirected edge.
    pub fn add_edge(&mut self, a: u32, b: u32, w: f32) {
        assert!(a != b, "self-loops are not allowed ({a})");
        assert!(
            (a as usize) < self.adj.len() && (b as usize) < self.adj.len(),
            "edge ({a},{b}) out of range"
        );
        assert!(w > 0.0 && w <= 1.0, "edge weight must be in (0,1], got {w}");
        for &(nb, _) in &self.adj[a as usize] {
            assert!(nb != b, "duplicate edge ({a},{b})");
        }
        let insert = |list: &mut Vec<(u32, f32)>, v: u32, w: f32| {
            let pos = list.partition_point(|&(x, _)| x < v);
            list.insert(pos, (v, w));
        };
        insert(&mut self.adj[a as usize], b, w);
        insert(&mut self.adj[b as usize], a, w);
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbours of `u` with edge weights, sorted by id.
    pub fn neighbors(&self, u: u32) -> &[(u32, f32)] {
        &self.adj[u as usize]
    }

    /// Watts–Strogatz small-world generator: ring lattice of degree `k`
    /// (even), each edge rewired with probability `beta`; weights uniform
    /// in `[w_lo, w_hi]`. A standard stand-in for friendship graphs.
    pub fn small_world(n: usize, k: usize, beta: f64, weights: (f32, f32), seed: u64) -> Self {
        assert!(n >= 4, "small-world graphs need at least 4 nodes");
        assert!(
            k >= 2 && k.is_multiple_of(2) && k < n,
            "k must be even and < n"
        );
        assert!((0.0..=1.0).contains(&beta));
        let mut rng = StdRng::seed_from_u64(seed);
        // Collect target pairs first, then weights.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let exists = |pairs: &[(u32, u32)], a: u32, b: u32| {
            pairs
                .iter()
                .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        };
        for u in 0..n as u32 {
            for j in 1..=(k / 2) as u32 {
                let v = (u + j) % n as u32;
                let (mut a, mut b) = (u, v);
                if rng.gen::<f64>() < beta {
                    // Rewire the far endpoint to a uniform non-duplicate.
                    for _ in 0..16 {
                        let cand = rng.gen_range(0..n) as u32;
                        if cand != a && !exists(&pairs, a, cand) {
                            b = cand;
                            break;
                        }
                    }
                }
                if !exists(&pairs, a, b) && a != b {
                    if a > b {
                        std::mem::swap(&mut a, &mut b);
                    }
                    pairs.push((a, b));
                }
            }
        }
        let edges: Vec<(u32, u32, f32)> = pairs
            .into_iter()
            .map(|(a, b)| (a, b, rng.gen_range(weights.0..=weights.1)))
            .collect();
        SocialGraph::from_edges(n, &edges)
    }

    /// Barabási–Albert preferential attachment: each new node attaches to
    /// `m` existing nodes with probability proportional to degree. Produces
    /// the heavy-tailed degree distributions of real social networks.
    pub fn preferential_attachment(n: usize, m: usize, weights: (f32, f32), seed: u64) -> Self {
        assert!(m >= 1 && n > m, "need n > m >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = SocialGraph::empty(n);
        // Degree-proportional sampling via the repeated-endpoints trick.
        let mut endpoints: Vec<u32> = Vec::new();
        // Seed clique over the first m+1 nodes.
        for a in 0..=(m as u32) {
            for b in (a + 1)..=(m as u32) {
                g.add_edge(a, b, rng.gen_range(weights.0..=weights.1));
                endpoints.push(a);
                endpoints.push(b);
            }
        }
        for u in (m as u32 + 1)..n as u32 {
            let mut chosen: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < 1000 {
                guard += 1;
                let v = endpoints[rng.gen_range(0..endpoints.len())];
                if v != u && !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for v in chosen {
                g.add_edge(u, v, rng.gen_range(weights.0..=weights.1));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        g
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.n() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_is_symmetric_and_sorted() {
        let g = SocialGraph::from_edges(4, &[(0, 2, 0.5), (2, 1, 0.3), (0, 1, 0.9)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[(1, 0.9), (2, 0.5)]);
        assert_eq!(g.neighbors(2), &[(0, 0.5), (1, 0.3)]);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        SocialGraph::from_edges(2, &[(1, 1, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        SocialGraph::from_edges(3, &[(0, 1, 0.5), (1, 0, 0.4)]);
    }

    #[test]
    #[should_panic(expected = "edge weight")]
    fn rejects_bad_weight() {
        SocialGraph::from_edges(3, &[(0, 1, 1.5)]);
    }

    #[test]
    fn small_world_shape() {
        let g = SocialGraph::small_world(100, 6, 0.1, (0.2, 0.8), 1);
        // Close to n*k/2 edges (rewiring may drop a few duplicates).
        assert!(g.edge_count() > 250 && g.edge_count() <= 300);
        assert!((g.mean_degree() - 6.0).abs() < 1.0);
        // Deterministic in the seed.
        let h = SocialGraph::small_world(100, 6, 0.1, (0.2, 0.8), 1);
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.neighbors(17), h.neighbors(17));
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let g = SocialGraph::preferential_attachment(500, 2, (0.1, 0.9), 3);
        assert!(
            g.max_degree() > 3 * g.mean_degree() as usize,
            "max {} mean {}",
            g.max_degree(),
            g.mean_degree()
        );
        assert_eq!(g.n(), 500);
    }
}
