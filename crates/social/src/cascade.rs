//! Influence propagation over the social graph.

use crate::SocialGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-hop deterministic activation: a user is activated when it is a seed
/// or has a seed neighbour whose edge weight is at least `threshold`.
/// Returns the sorted activated set.
pub fn activate_one_hop(graph: &SocialGraph, seeds: &[u32], threshold: f32) -> Vec<u32> {
    let mut active = vec![false; graph.n()];
    for &s in seeds {
        active[s as usize] = true;
    }
    let mut out: Vec<u32> = seeds.to_vec();
    for &s in seeds {
        for &(nb, w) in graph.neighbors(s) {
            if w >= threshold && !active[nb as usize] {
                active[nb as usize] = true;
                out.push(nb);
            }
        }
    }
    out.sort_unstable();
    out
}

/// A live-edge sample for Independent-Cascade estimation: each edge is kept
/// with its weight as probability. Activation under IC equals reachability
/// over kept edges, which makes expected coverage an average over samples —
/// a submodular function of the seed set (the classic Kempe et al. result).
#[derive(Debug, Clone)]
pub struct LiveEdgeSample {
    /// Kept (undirected) adjacency per node, sorted.
    adj: Vec<Vec<u32>>,
}

impl LiveEdgeSample {
    /// Draws one live-edge subgraph with a seeded RNG.
    pub fn draw(graph: &SocialGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); graph.n()];
        for u in 0..graph.n() as u32 {
            for &(v, w) in graph.neighbors(u) {
                if v > u && rng.gen::<f32>() < w {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        LiveEdgeSample { adj }
    }

    /// Sorted set of nodes reachable from `seeds` through kept edges
    /// (inclusive of the seeds).
    pub fn reachable(&self, seeds: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &s in seeds {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out: Vec<u32> = stack.clone();
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Kept-edge count (for tests and diagnostics).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(w: f32) -> SocialGraph {
        SocialGraph::from_edges(5, &[(0, 1, w), (1, 2, w), (2, 3, w), (3, 4, w)])
    }

    #[test]
    fn one_hop_activates_strong_neighbours_only() {
        let g = SocialGraph::from_edges(4, &[(0, 1, 0.9), (0, 2, 0.2), (2, 3, 0.9)]);
        let act = activate_one_hop(&g, &[0], 0.5);
        assert_eq!(act, vec![0, 1]); // weak edge to 2 does not fire
        let act = activate_one_hop(&g, &[0], 0.1);
        assert_eq!(act, vec![0, 1, 2]); // one hop only: 3 not reached
    }

    #[test]
    fn one_hop_with_empty_seeds() {
        let g = line_graph(0.9);
        assert!(activate_one_hop(&g, &[], 0.5).is_empty());
    }

    #[test]
    fn live_edges_all_kept_at_weight_one() {
        let g = line_graph(1.0);
        let s = LiveEdgeSample::draw(&g, 7);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.reachable(&[0]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reachability_is_monotone_in_seeds() {
        let g = SocialGraph::small_world(60, 4, 0.2, (0.3, 0.9), 11);
        let s = LiveEdgeSample::draw(&g, 5);
        let small = s.reachable(&[3]);
        let large = s.reachable(&[3, 17, 42]);
        for u in &small {
            assert!(large.binary_search(u).is_ok());
        }
    }

    #[test]
    fn draw_is_deterministic_in_seed() {
        let g = SocialGraph::small_world(40, 4, 0.3, (0.2, 0.8), 2);
        let a = LiveEdgeSample::draw(&g, 9);
        let b = LiveEdgeSample::draw(&g, 9);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.reachable(&[0, 5]), b.reachable(&[0, 5]));
        let c = LiveEdgeSample::draw(&g, 10);
        // Different seeds generally keep different edge sets.
        assert!(a.edge_count() != c.edge_count() || a.reachable(&[0]) != c.reachable(&[0]));
    }

    #[test]
    fn mean_kept_edges_tracks_weights() {
        let g = line_graph(0.5);
        let kept: usize = (0..200)
            .map(|s| LiveEdgeSample::draw(&g, s).edge_count())
            .sum();
        let mean = kept as f64 / 200.0;
        assert!(
            (mean - 2.0).abs() < 0.4,
            "mean kept {mean} for p=0.5 on 4 edges"
        );
    }
}
