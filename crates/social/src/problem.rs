//! The MC²LS-S problem: MC²LS plus social propagation and interests.

use crate::{activate_one_hop, LiveEdgeSample, SocialGraph};
use mc2ls_core::{algorithms, InfluenceSets, Method, Problem};
use mc2ls_influence::ProbabilityFunction;
use serde::{Deserialize, Serialize};

/// How physical influence propagates through the social graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum PropagationModel {
    /// Deterministic single-hop activation across edges with weight at
    /// least the threshold.
    OneHop {
        /// Minimum edge weight that transmits influence.
        threshold: f32,
    },
    /// Kempe-style Independent Cascade estimated over Monte-Carlo
    /// live-edge samples (deterministic in `seed`).
    IndependentCascade {
        /// Number of live-edge samples (more = lower variance).
        samples: usize,
        /// RNG seed for the samples.
        seed: u64,
    },
}

/// An MC²LS instance extended with a social graph and per-user interests.
#[derive(Debug, Clone)]
pub struct SocialProblem<PF: ProbabilityFunction = mc2ls_influence::Sigmoid> {
    /// The underlying geo problem (users, facilities, candidates, k, τ, PF).
    pub base: Problem<PF>,
    /// Friendship graph over the same user ids.
    pub graph: SocialGraph,
    /// Per-user interest affinity in `[0, 1]`; scales the user's weight.
    /// Empty means "everyone fully interested".
    pub interests: Vec<f64>,
    /// The propagation model.
    pub model: PropagationModel,
}

/// The result of the geo-social greedy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialSolution {
    /// Selected candidate ids in pick order.
    pub selected: Vec<u32>,
    /// Expected social competitive influence of the selected set.
    pub scinf: f64,
    /// The plain (non-social) `cinf` of the same set, for comparison.
    pub geo_cinf: f64,
}

impl<PF: ProbabilityFunction> SocialProblem<PF> {
    /// Validates the extension against the base problem.
    pub fn new(
        base: Problem<PF>,
        graph: SocialGraph,
        interests: Vec<f64>,
        model: PropagationModel,
    ) -> Self {
        assert_eq!(
            graph.n(),
            base.n_users(),
            "social graph must cover every user"
        );
        assert!(
            interests.is_empty() || interests.len() == base.n_users(),
            "interests must be empty or one per user"
        );
        assert!(
            interests.iter().all(|&x| (0.0..=1.0).contains(&x)),
            "interest affinities must be in [0, 1]"
        );
        if let PropagationModel::IndependentCascade { samples, .. } = model {
            assert!(samples >= 1, "need at least one cascade sample");
        }
        SocialProblem {
            base,
            graph,
            interests,
            model,
        }
    }

    fn weight(&self, sets: &InfluenceSets, o: u32) -> f64 {
        let interest = if self.interests.is_empty() {
            1.0
        } else {
            self.interests[o as usize]
        };
        sets.weight(o) * interest
    }
}

/// Solves MC²LS-S greedily: physical influence sets are computed with the
/// IQuad-tree pipeline, each candidate's seed set is closed under the
/// propagation model, and the greedy maximises the expected interest- and
/// competition-weighted activated mass. Expected coverage is submodular
/// under both models, so the `(1 − 1/e)` guarantee carries over (w.r.t.
/// the sampled objective for IC).
pub fn solve_social<PF: ProbabilityFunction>(problem: &SocialProblem<PF>) -> SocialSolution {
    let (sets, _, _) =
        algorithms::influence_sets(&problem.base, Method::Iqt(mc2ls_core::IqtConfig::default()));
    let n_cands = sets.n_candidates();
    let k = problem.base.k;

    // Per candidate (and per sample for IC): the activated user set.
    // activated[c][s] is sorted.
    let activated: Vec<Vec<Vec<u32>>> = match problem.model {
        PropagationModel::OneHop { threshold } => (0..n_cands)
            .map(|c| vec![activate_one_hop(&problem.graph, sets.omega(c), threshold)])
            .collect(),
        PropagationModel::IndependentCascade { samples, seed } => {
            let live: Vec<LiveEdgeSample> = (0..samples)
                .map(|s| LiveEdgeSample::draw(&problem.graph, seed.wrapping_add(s as u64)))
                .collect();
            (0..n_cands)
                .map(|c| {
                    live.iter()
                        .map(|sample| sample.reachable(sets.omega(c)))
                        .collect()
                })
                .collect()
        }
    };
    let n_samples = activated.first().map_or(1, |a| a.len());

    // Greedy over the expected weighted activated mass.
    let mut covered: Vec<Vec<bool>> = vec![vec![false; sets.n_users()]; n_samples];
    let mut taken = vec![false; n_cands];
    let mut selected: Vec<u32> = Vec::with_capacity(k);
    let mut scinf = 0.0;

    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..n_cands {
            if taken[c] {
                continue;
            }
            let mut gain = 0.0;
            for (s, cov) in covered.iter().enumerate() {
                for &o in &activated[c][s] {
                    if !cov[o as usize] {
                        gain += problem.weight(&sets, o);
                    }
                }
            }
            let gain = gain / n_samples as f64;
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((c, gain)),
            }
        }
        // lint:allow(panic-path): the base problem validates k <= |C|, so an untaken candidate remains
        let (c, gain) = best.expect("k <= |C| is validated by the base problem");
        taken[c] = true;
        selected.push(c as u32);
        scinf += gain;
        for (s, cov) in covered.iter_mut().enumerate() {
            for &o in &activated[c][s] {
                cov[o as usize] = true;
            }
        }
    }

    let geo_cinf = sets.cinf_set(&selected);
    SocialSolution {
        selected,
        scinf,
        geo_cinf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc2ls_geo::Point;
    use mc2ls_influence::{MovingUser, Sigmoid};

    /// Three user clusters; candidates A and B physically reach one cluster
    /// each; cluster A's user is friends with the (physically unreachable)
    /// third user.
    fn toy() -> (Problem, SocialGraph) {
        let users = vec![
            MovingUser::new(vec![Point::new(0.0, 0.0), Point::new(0.1, 0.1)]), // o0
            MovingUser::new(vec![Point::new(8.0, 8.0), Point::new(8.1, 8.1)]), // o1
            MovingUser::new(vec![Point::new(20.0, 0.0), Point::new(20.1, 0.1)]), // o2: remote
        ];
        let candidates = vec![Point::new(0.05, 0.05), Point::new(8.05, 8.05)];
        let base = Problem::new(users, vec![], candidates, 1, 0.5, Sigmoid::paper_default());
        let graph = SocialGraph::from_edges(3, &[(0, 2, 0.9)]);
        (base, graph)
    }

    #[test]
    fn social_boost_flips_the_pick() {
        let (base, graph) = toy();
        // Without the graph both candidates reach exactly one user; id
        // tie-break picks candidate 0. With one-hop social activation,
        // candidate 0 activates o2 through the friendship and must win
        // with expected mass 2.
        let p = SocialProblem::new(
            base,
            graph,
            vec![],
            PropagationModel::OneHop { threshold: 0.5 },
        );
        let sol = solve_social(&p);
        assert_eq!(sol.selected, vec![0]);
        assert!((sol.scinf - 2.0).abs() < 1e-9);
        assert!((sol.geo_cinf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weak_tie_does_not_propagate() {
        let (base, _) = toy();
        let graph = SocialGraph::from_edges(3, &[(0, 2, 0.3)]);
        let p = SocialProblem::new(
            base,
            graph,
            vec![],
            PropagationModel::OneHop { threshold: 0.5 },
        );
        let sol = solve_social(&p);
        // No boost: tie at mass 1; smaller id wins.
        assert_eq!(sol.selected, vec![0]);
        assert!((sol.scinf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interests_scale_the_objective() {
        let (base, graph) = toy();
        // o0 and o2 are uninterested; candidate 1's o1 is fully interested.
        let p = SocialProblem::new(
            base,
            graph,
            vec![0.1, 1.0, 0.1],
            PropagationModel::OneHop { threshold: 0.5 },
        );
        let sol = solve_social(&p);
        assert_eq!(sol.selected, vec![1]);
        assert!((sol.scinf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cascade_with_certain_edges_equals_full_reachability() {
        let (base, _) = toy();
        let graph = SocialGraph::from_edges(3, &[(0, 2, 1.0), (2, 1, 1.0)]);
        let p = SocialProblem::new(
            base,
            graph,
            vec![],
            PropagationModel::IndependentCascade {
                samples: 4,
                seed: 1,
            },
        );
        let sol = solve_social(&p);
        // Candidate 0 seeds o0 which reaches everyone: expected mass 3.
        assert_eq!(sol.selected, vec![0]);
        assert!((sol.scinf - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cascade_estimate_is_deterministic_in_seed() {
        let (base, graph) = toy();
        let make = |seed| {
            let p = SocialProblem::new(
                base.clone(),
                graph.clone(),
                vec![],
                PropagationModel::IndependentCascade { samples: 8, seed },
            );
            solve_social(&p)
        };
        let a = make(5);
        let b = make(5);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.scinf, b.scinf);
    }

    #[test]
    #[should_panic(expected = "social graph must cover")]
    fn graph_size_mismatch_is_rejected() {
        let (base, _) = toy();
        SocialProblem::new(
            base,
            SocialGraph::empty(2),
            vec![],
            PropagationModel::OneHop { threshold: 0.5 },
        );
    }

    #[test]
    #[should_panic(expected = "interest affinities")]
    fn bad_interest_is_rejected() {
        let (base, graph) = toy();
        SocialProblem::new(
            base,
            graph,
            vec![0.5, 1.2, 0.0],
            PropagationModel::OneHop { threshold: 0.5 },
        );
    }
}
