//! Radius and position-count thresholds derived from the influence model:
//! `mMR(τ, r)`, `NIR`, and `η(τ, PF, d̂)` (paper §IV-B and §V-A).

use crate::ProbabilityFunction;

/// `minMaxRadius(τ, r) = PF⁻¹(1 − (1 − τ)^{1/r})` (paper §IV-B).
///
/// * **Corollary 1**: if all `r` positions of a user lie within the circle
///   `φ(v, mMR(τ,r))`, then `v` necessarily influences the user.
/// * **Corollary 2**: if none do, `v` cannot influence the user.
///
/// Returns `None` when the required per-position probability
/// `1 − (1−τ)^{1/r}` exceeds `PF(0)` — i.e. a user with only `r` positions
/// can **never** reach `τ`, no matter how close; callers must treat such
/// users as uninfluenceable rather than skipping the pruning rule.
pub fn min_max_radius<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    tau: f64,
    r: usize,
) -> Option<f64> {
    assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
    if r == 0 {
        return None;
    }
    let per_position = 1.0 - (1.0 - tau).powf(1.0 / r as f64);
    pf.inverse(per_position)
}

/// `NIR = mMR(τ, r_max)` — the Non-influence Radius (paper §V-B): the upper
/// bound of every user's `mMR`, used by the NIR rounded-square rule
/// (Lemma 3). `None` when even `r_max` positions at distance 0 cannot reach
/// `τ`, in which case **no** user in the dataset can ever be influenced.
pub fn non_influence_radius<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    tau: f64,
    r_max: usize,
) -> Option<f64> {
    min_max_radius(pf, tau, r_max)
}

/// `η(τ, PF, d̂) = 1 / log_{1−τ}(1 − PF(d̂))` — the position-count threshold
/// (Definition 8): if `⌈η⌉` positions of a user lie within distance `d̂` of
/// an abstract facility, the facility necessarily influences the user
/// (Lemma 1).
///
/// Returns `+∞` when `PF(d̂) = 0` (positions at that distance contribute
/// nothing, so no count suffices); callers treat an infinite threshold as
/// "the IS rule cannot fire at this scale".
pub fn eta<PF: ProbabilityFunction + ?Sized>(pf: &PF, tau: f64, d_hat: f64) -> f64 {
    assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
    assert!(d_hat >= 0.0, "distance must be non-negative, got {d_hat}");
    let p = pf.prob(d_hat);
    if p <= 0.0 {
        return f64::INFINITY;
    }
    if p >= 1.0 {
        // A certain hit at one position influences immediately.
        return 1.0;
    }
    // 1/log_{1-τ}(1-p) = ln(1-τ)/ln(1-p); both logs are negative.
    (1.0 - tau).ln() / (1.0 - p).ln()
}

/// `⌈η(τ, PF, d̂)⌉` as a usable count; `None` when `η` is infinite (the IS
/// rule can never fire for this `d̂`).
pub fn eta_count<PF: ProbabilityFunction + ?Sized>(pf: &PF, tau: f64, d_hat: f64) -> Option<usize> {
    let e = eta(pf, tau, d_hat);
    if !e.is_finite() {
        return None;
    }
    // ceil, with a tiny slack so that exact-integer η does not round up due
    // to floating error; η ≥ something like 1e0..1e4 in practice.
    Some((e - 1e-9).ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cumulative_probability, Sigmoid};
    use mc2ls_geo::Point;

    #[test]
    fn mmr_boundary_probability_is_exact() {
        let pf = Sigmoid::paper_default();
        let tau = 0.7;
        for r in [2usize, 3, 5, 10] {
            let mmr = min_max_radius(&pf, tau, r).unwrap();
            // r positions exactly at distance mMR yield exactly τ.
            let positions = vec![Point::new(mmr, 0.0); r];
            let pr = cumulative_probability(&pf, &Point::ORIGIN, &positions);
            assert!((pr - tau).abs() < 1e-9, "r={r}: pr={pr}");
        }
    }

    #[test]
    fn mmr_none_when_unreachable() {
        let pf = Sigmoid::paper_default(); // PF(0) = 0.5
                                           // τ=0.7 with r=1 needs per-position 0.7 > 0.5: unreachable.
        assert!(min_max_radius(&pf, 0.7, 1).is_none());
        // r=2 needs 1−0.3^0.5 ≈ 0.452 < 0.5: reachable.
        assert!(min_max_radius(&pf, 0.7, 2).is_some());
        assert!(min_max_radius(&pf, 0.7, 0).is_none());
    }

    #[test]
    fn mmr_monotone_in_r() {
        let pf = Sigmoid::paper_default();
        let mut last = 0.0;
        for r in 2..30 {
            let mmr = min_max_radius(&pf, 0.7, r).unwrap();
            assert!(mmr >= last, "mMR must grow with r");
            last = mmr;
        }
    }

    #[test]
    fn nir_upper_bounds_every_mmr() {
        let pf = Sigmoid::paper_default();
        let r_max = 25;
        let nir = non_influence_radius(&pf, 0.5, r_max).unwrap();
        for r in 1..=r_max {
            if let Some(mmr) = min_max_radius(&pf, 0.5, r) {
                assert!(mmr <= nir + 1e-12);
            }
        }
    }

    #[test]
    fn nir_decreases_with_tau() {
        // The paper (Fig. 7 discussion): NIR declines as τ increases.
        let pf = Sigmoid::paper_default();
        let mut last = f64::INFINITY;
        for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let nir = non_influence_radius(&pf, tau, 30).unwrap();
            assert!(nir < last, "tau={tau}");
            last = nir;
        }
    }

    #[test]
    fn eta_guarantees_influence() {
        // Lemma 1: ⌈η⌉ positions within d̂ imply influence.
        let pf = Sigmoid::paper_default();
        for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
            for d_hat in [0.5, 1.0, 2.0] {
                let n = eta_count(&pf, tau, d_hat).unwrap();
                let positions = vec![Point::new(d_hat, 0.0); n];
                let pr = cumulative_probability(&pf, &Point::ORIGIN, &positions);
                assert!(pr >= tau - 1e-9, "tau={tau} d={d_hat} n={n}: pr={pr}");
            }
        }
    }

    #[test]
    fn eta_is_tight() {
        // One position fewer than ⌈η⌉ at exactly distance d̂ must NOT be
        // enough (when η is not an exact integer).
        let pf = Sigmoid::paper_default();
        let (tau, d_hat) = (0.7, 2.0);
        let e = eta(&pf, tau, d_hat);
        let n = eta_count(&pf, tau, d_hat).unwrap();
        if (e - e.round()).abs() > 1e-6 {
            let positions = vec![Point::new(d_hat, 0.0); n - 1];
            let pr = cumulative_probability(&pf, &Point::ORIGIN, &positions);
            assert!(pr < tau, "η should be tight: pr={pr} tau={tau}");
        }
    }

    #[test]
    fn eta_grows_with_distance_and_tau() {
        // Paper §VII-B: η grows with τ (for fixed d̂); it also grows with d̂.
        let pf = Sigmoid::paper_default();
        assert!(eta(&pf, 0.9, 2.0) > eta(&pf, 0.1, 2.0));
        assert!(eta(&pf, 0.7, 2.5) > eta(&pf, 0.7, 1.0));
    }

    #[test]
    fn eta_infinite_beyond_cutoff() {
        let pf = crate::Linear::new(1.0, 1.0);
        assert!(eta(&pf, 0.5, 2.0).is_infinite());
        assert!(eta_count(&pf, 0.5, 2.0).is_none());
        assert!(eta_count(&pf, 0.5, 0.5).is_some());
    }

    #[test]
    fn eta_inverse_relation_with_mmr() {
        // Equation (3): plugging d̂ = mMR(τ, r) into η returns exactly r.
        let pf = Sigmoid::paper_default();
        for r in [2usize, 4, 8, 16] {
            let mmr = min_max_radius(&pf, 0.6, r).unwrap();
            if mmr > 0.0 {
                let e = eta(&pf, 0.6, mmr);
                assert!((e - r as f64).abs() < 1e-6, "r={r} eta={e}");
            }
        }
    }
}
