//! Distance-based probability (utility) functions `PF(d)`.
//!
//! A `PF` maps the distance (km) between an abstract facility and one user
//! position to the probability that the facility influences the user at that
//! position (paper §III-A: `Pr_v(pᵢ) = PF(d(v, pᵢ))`). Every `PF` is
//! monotonically non-increasing in distance; pruning correctness depends on
//! exactly that property, so it is asserted by the property tests.

use crate::lanes::{exp_neg, FAST_PF_EPS};
use serde::{Deserialize, Serialize};

/// A monotonically non-increasing distance→probability mapping.
///
/// Implementations must guarantee, for all `0 ≤ d₁ ≤ d₂`:
/// `prob(d₁) ≥ prob(d₂)` and `0 ≤ prob(d) ≤ 1`.
pub trait ProbabilityFunction: Send + Sync {
    /// Influence probability of one position at distance `d` km (`d ≥ 0`).
    fn prob(&self, d: f64) -> f64;

    /// Evaluates [`prob`](Self::prob) over a lane of distances, writing into
    /// `out` (`out.len() == d.len()`, at most [`LANE`](crate::LANE) wide in
    /// the kernel). The default is the exact per-element evaluation; fast
    /// overrides may deviate by at most [`lane_error_bound`](Self::lane_error_bound)
    /// per element. The branch-free loop shape is what lets the compiler
    /// auto-vectorise the verification hot path.
    fn prob_lanes(&self, d: &[f64], out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(d) {
            *o = self.prob(x);
        }
    }

    /// Absolute per-element error bound of [`prob_lanes`](Self::prob_lanes)
    /// against [`prob`](Self::prob); `0.0` means the lane path is exact.
    /// The blocked kernel brackets every keep factor by this half-width and
    /// consults the exact path only when a τ decision falls inside the band.
    fn lane_error_bound(&self) -> f64 {
        0.0
    }

    /// The largest achievable single-position probability, `prob(0)`.
    fn max_probability(&self) -> f64 {
        self.prob(0.0)
    }

    /// The largest distance `d` with `prob(d) ≥ p`, i.e. the generalised
    /// inverse `PF⁻¹(p)`.
    ///
    /// Returns `None` when `p > prob(0)` (no distance achieves `p`) or when
    /// `p ≤ 0` would make every distance qualify (callers never need an
    /// unbounded radius; they treat `None` from `p ≤ 0` as "cannot bound").
    fn inverse(&self, p: f64) -> Option<f64>;
}

/// The paper's experimental utility function `PF(d) = ρ / (1 + e^d)`
/// (§VII-A, following PINOCCHIO [13]), with `ρ ∈ (0, 1]` the maximum
/// probability parameter (the paper sets `ρ = 1`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sigmoid {
    /// Maximum probability parameter `ρ`.
    pub rho: f64,
}

impl Sigmoid {
    /// Creates the sigmoid utility with parameter `ρ ∈ (0, 1]`.
    pub fn new(rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        Sigmoid { rho }
    }

    /// The paper's default (`ρ = 1`).
    pub fn paper_default() -> Self {
        Sigmoid::new(1.0)
    }
}

impl ProbabilityFunction for Sigmoid {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho / (1.0 + d.exp())
    }

    // ρ/(1 + e^d) = ρ·t/(1 + t) with t = e^{−d}, evaluated through the
    // bounded-error fast path. With t̃ = t(1 ± ε) and dp/dt = ρ/(1+t)² ≤ ρ,
    // the probability error is ≤ ρ·ε·t/(1+t)² ≤ ρ·ε/4 — comfortably inside
    // the published ρ·FAST_PF_EPS budget together with formula rounding.
    //
    // `#[inline]` is load-bearing: the kernel lives in a downstream
    // monomorphisation, and only an inlined body lets the compiler see the
    // constant `LANE` trip count of full chunks and vectorise the loop
    // (a cross-crate call also costs more than the polynomial itself).
    #[inline]
    fn prob_lanes(&self, d: &[f64], out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(d) {
            let t = exp_neg(-x);
            *o = self.rho * t / (1.0 + t);
        }
    }

    fn lane_error_bound(&self) -> f64 {
        self.rho * FAST_PF_EPS
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.max_probability() {
            return None;
        }
        // p = rho / (1 + e^d)  =>  d = ln(rho/p − 1); clamp the boundary
        // p == rho/2 (d = 0) against rounding.
        Some((self.rho / p - 1.0).ln().max(0.0))
    }
}

/// Exponential decay `PF(d) = ρ·e^{−d/σ}` — a common alternative influence
/// preference (steeper near the facility than the sigmoid).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Exponential {
    /// Maximum probability at distance zero.
    pub rho: f64,
    /// Decay length-scale in km.
    pub sigma: f64,
}

impl Exponential {
    /// Creates an exponential-decay utility.
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Exponential { rho, sigma }
    }
}

impl ProbabilityFunction for Exponential {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho * (-d / self.sigma).exp()
    }

    // ρ·e^{−d/σ} through the fast path: with ẽ = e^{−d/σ}(1 ± ε) the
    // probability error is ≤ ρ·ε·e^{−d/σ} ≤ ρ·ε, inside ρ·FAST_PF_EPS.
    // `#[inline]` for the same reason as the sigmoid override: the constant
    // trip count of full chunks is only visible to the vectoriser inline.
    #[inline]
    fn prob_lanes(&self, d: &[f64], out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(d) {
            *o = self.rho * exp_neg(-x / self.sigma);
        }
    }

    fn lane_error_bound(&self) -> f64 {
        self.rho * FAST_PF_EPS
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some((-(p / self.rho).ln() * self.sigma).max(0.0))
    }
}

/// Linear decay `PF(d) = ρ·max(0, 1 − d/R)` — zero beyond the cutoff `R`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    /// Maximum probability at distance zero.
    pub rho: f64,
    /// Cutoff radius in km beyond which the probability is zero.
    pub cutoff: f64,
}

impl Linear {
    /// Creates a linear-decay utility.
    pub fn new(rho: f64, cutoff: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(cutoff > 0.0, "cutoff must be positive, got {cutoff}");
        Linear { rho, cutoff }
    }
}

impl ProbabilityFunction for Linear {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho * (1.0 - d / self.cutoff).max(0.0)
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some(((1.0 - p / self.rho) * self.cutoff).max(0.0))
    }
}

/// Range (yes/no) semantics `PF(d) = ρ·[d ≤ R]` — the influence model used
/// by range-coverage CLS work ([16] in the paper); included as a comparator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Step {
    /// Probability inside the range.
    pub rho: f64,
    /// Range radius in km.
    pub range: f64,
}

impl Step {
    /// Creates a step utility.
    pub fn new(rho: f64, range: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(range > 0.0, "range must be positive, got {range}");
        Step { rho, range }
    }
}

impl ProbabilityFunction for Step {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        if d <= self.range {
            self.rho
        } else {
            0.0
        }
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some(self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_matches_paper_values() {
        let pf = Sigmoid::paper_default();
        assert!((pf.prob(0.0) - 0.5).abs() < 1e-12);
        // PF is strictly decreasing.
        assert!(pf.prob(0.5) > pf.prob(1.0));
        assert!(pf.prob(10.0) < 1e-4);
    }

    #[test]
    fn sigmoid_inverse_roundtrip() {
        let pf = Sigmoid::new(0.8);
        for p in [0.05, 0.1, 0.2, 0.39] {
            let d = pf.inverse(p).unwrap();
            assert!((pf.prob(d) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn sigmoid_inverse_rejects_unreachable() {
        let pf = Sigmoid::paper_default();
        assert!(pf.inverse(0.6).is_none()); // > PF(0) = 0.5
        assert!(pf.inverse(0.0).is_none());
        assert!(pf.inverse(-0.1).is_none());
        assert!((pf.inverse(0.5).unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_inverse_roundtrip() {
        let pf = Exponential::new(1.0, 2.0);
        for p in [0.1, 0.5, 0.9] {
            let d = pf.inverse(p).unwrap();
            assert!((pf.prob(d) - p).abs() < 1e-9);
        }
        assert!(pf.inverse(1.5).is_none());
    }

    #[test]
    fn linear_cuts_off() {
        let pf = Linear::new(1.0, 2.0);
        assert_eq!(pf.prob(2.0), 0.0);
        assert_eq!(pf.prob(5.0), 0.0);
        assert!((pf.prob(1.0) - 0.5).abs() < 1e-12);
        assert!((pf.inverse(0.5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_is_flat_inside_range() {
        let pf = Step::new(0.9, 1.5);
        assert_eq!(pf.prob(0.0), 0.9);
        assert_eq!(pf.prob(1.5), 0.9);
        assert_eq!(pf.prob(1.500001), 0.0);
        // Inverse of any achievable p is the full range.
        assert_eq!(pf.inverse(0.5).unwrap(), 1.5);
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn sigmoid_rejects_bad_rho() {
        Sigmoid::new(1.5);
    }

    fn lane_grid() -> Vec<f64> {
        let mut d = Vec::new();
        let mut x = 0.0f64;
        while x <= 60.0 {
            d.push(x);
            x += 0.013;
        }
        d.extend([0.0, 1e-9, 700.0, 710.0, 1e6]);
        d
    }

    #[test]
    fn sigmoid_lanes_stay_inside_their_error_bound() {
        for pf in [Sigmoid::paper_default(), Sigmoid::new(0.4)] {
            let d = lane_grid();
            let mut out = vec![0.0; d.len()];
            pf.prob_lanes(&d, &mut out);
            let bound = pf.lane_error_bound();
            assert!(bound > 0.0);
            for (&x, &fast) in d.iter().zip(&out) {
                let exact = pf.prob(x);
                assert!(
                    (fast - exact).abs() <= bound,
                    "d={x} fast={fast} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn exponential_lanes_stay_inside_their_error_bound() {
        for pf in [Exponential::new(1.0, 2.0), Exponential::new(0.6, 0.5)] {
            let d = lane_grid();
            let mut out = vec![0.0; d.len()];
            pf.prob_lanes(&d, &mut out);
            let bound = pf.lane_error_bound();
            for (&x, &fast) in d.iter().zip(&out) {
                let exact = pf.prob(x);
                assert!(
                    (fast - exact).abs() <= bound,
                    "d={x} fast={fast} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn default_lane_path_is_exact() {
        let pf = Linear::new(1.0, 2.0);
        assert_eq!(pf.lane_error_bound(), 0.0);
        let d = [0.0, 0.5, 1.0, 1.9, 2.5, 100.0];
        let mut out = [0.0; 6];
        pf.prob_lanes(&d, &mut out);
        for (&x, &fast) in d.iter().zip(&out) {
            assert_eq!(fast.to_bits(), pf.prob(x).to_bits());
        }
    }
}
