//! Distance-based probability (utility) functions `PF(d)`.
//!
//! A `PF` maps the distance (km) between an abstract facility and one user
//! position to the probability that the facility influences the user at that
//! position (paper §III-A: `Pr_v(pᵢ) = PF(d(v, pᵢ))`). Every `PF` is
//! monotonically non-increasing in distance; pruning correctness depends on
//! exactly that property, so it is asserted by the property tests.

use serde::{Deserialize, Serialize};

/// A monotonically non-increasing distance→probability mapping.
///
/// Implementations must guarantee, for all `0 ≤ d₁ ≤ d₂`:
/// `prob(d₁) ≥ prob(d₂)` and `0 ≤ prob(d) ≤ 1`.
pub trait ProbabilityFunction: Send + Sync {
    /// Influence probability of one position at distance `d` km (`d ≥ 0`).
    fn prob(&self, d: f64) -> f64;

    /// The largest achievable single-position probability, `prob(0)`.
    fn max_probability(&self) -> f64 {
        self.prob(0.0)
    }

    /// The largest distance `d` with `prob(d) ≥ p`, i.e. the generalised
    /// inverse `PF⁻¹(p)`.
    ///
    /// Returns `None` when `p > prob(0)` (no distance achieves `p`) or when
    /// `p ≤ 0` would make every distance qualify (callers never need an
    /// unbounded radius; they treat `None` from `p ≤ 0` as "cannot bound").
    fn inverse(&self, p: f64) -> Option<f64>;
}

/// The paper's experimental utility function `PF(d) = ρ / (1 + e^d)`
/// (§VII-A, following PINOCCHIO [13]), with `ρ ∈ (0, 1]` the maximum
/// probability parameter (the paper sets `ρ = 1`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sigmoid {
    /// Maximum probability parameter `ρ`.
    pub rho: f64,
}

impl Sigmoid {
    /// Creates the sigmoid utility with parameter `ρ ∈ (0, 1]`.
    pub fn new(rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        Sigmoid { rho }
    }

    /// The paper's default (`ρ = 1`).
    pub fn paper_default() -> Self {
        Sigmoid::new(1.0)
    }
}

impl ProbabilityFunction for Sigmoid {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho / (1.0 + d.exp())
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.max_probability() {
            return None;
        }
        // p = rho / (1 + e^d)  =>  d = ln(rho/p − 1); clamp the boundary
        // p == rho/2 (d = 0) against rounding.
        Some((self.rho / p - 1.0).ln().max(0.0))
    }
}

/// Exponential decay `PF(d) = ρ·e^{−d/σ}` — a common alternative influence
/// preference (steeper near the facility than the sigmoid).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Exponential {
    /// Maximum probability at distance zero.
    pub rho: f64,
    /// Decay length-scale in km.
    pub sigma: f64,
}

impl Exponential {
    /// Creates an exponential-decay utility.
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Exponential { rho, sigma }
    }
}

impl ProbabilityFunction for Exponential {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho * (-d / self.sigma).exp()
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some((-(p / self.rho).ln() * self.sigma).max(0.0))
    }
}

/// Linear decay `PF(d) = ρ·max(0, 1 − d/R)` — zero beyond the cutoff `R`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    /// Maximum probability at distance zero.
    pub rho: f64,
    /// Cutoff radius in km beyond which the probability is zero.
    pub cutoff: f64,
}

impl Linear {
    /// Creates a linear-decay utility.
    pub fn new(rho: f64, cutoff: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(cutoff > 0.0, "cutoff must be positive, got {cutoff}");
        Linear { rho, cutoff }
    }
}

impl ProbabilityFunction for Linear {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        self.rho * (1.0 - d / self.cutoff).max(0.0)
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some(((1.0 - p / self.rho) * self.cutoff).max(0.0))
    }
}

/// Range (yes/no) semantics `PF(d) = ρ·[d ≤ R]` — the influence model used
/// by range-coverage CLS work ([16] in the paper); included as a comparator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Step {
    /// Probability inside the range.
    pub rho: f64,
    /// Range radius in km.
    pub range: f64,
}

impl Step {
    /// Creates a step utility.
    pub fn new(rho: f64, range: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        assert!(range > 0.0, "range must be positive, got {range}");
        Step { rho, range }
    }
}

impl ProbabilityFunction for Step {
    #[inline]
    fn prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        if d <= self.range {
            self.rho
        } else {
            0.0
        }
    }

    fn inverse(&self, p: f64) -> Option<f64> {
        if p <= 0.0 || p > self.rho {
            return None;
        }
        Some(self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_matches_paper_values() {
        let pf = Sigmoid::paper_default();
        assert!((pf.prob(0.0) - 0.5).abs() < 1e-12);
        // PF is strictly decreasing.
        assert!(pf.prob(0.5) > pf.prob(1.0));
        assert!(pf.prob(10.0) < 1e-4);
    }

    #[test]
    fn sigmoid_inverse_roundtrip() {
        let pf = Sigmoid::new(0.8);
        for p in [0.05, 0.1, 0.2, 0.39] {
            let d = pf.inverse(p).unwrap();
            assert!((pf.prob(d) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn sigmoid_inverse_rejects_unreachable() {
        let pf = Sigmoid::paper_default();
        assert!(pf.inverse(0.6).is_none()); // > PF(0) = 0.5
        assert!(pf.inverse(0.0).is_none());
        assert!(pf.inverse(-0.1).is_none());
        assert!((pf.inverse(0.5).unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_inverse_roundtrip() {
        let pf = Exponential::new(1.0, 2.0);
        for p in [0.1, 0.5, 0.9] {
            let d = pf.inverse(p).unwrap();
            assert!((pf.prob(d) - p).abs() < 1e-9);
        }
        assert!(pf.inverse(1.5).is_none());
    }

    #[test]
    fn linear_cuts_off() {
        let pf = Linear::new(1.0, 2.0);
        assert_eq!(pf.prob(2.0), 0.0);
        assert_eq!(pf.prob(5.0), 0.0);
        assert!((pf.prob(1.0) - 0.5).abs() < 1e-12);
        assert!((pf.inverse(0.5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_is_flat_inside_range() {
        let pf = Step::new(0.9, 1.5);
        assert_eq!(pf.prob(0.0), 0.9);
        assert_eq!(pf.prob(1.5), 0.9);
        assert_eq!(pf.prob(1.500001), 0.0);
        // Inverse of any achievable p is the full range.
        assert_eq!(pf.inverse(0.5).unwrap(), 1.5);
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn sigmoid_rejects_bad_rho() {
        Sigmoid::new(1.5);
    }
}
