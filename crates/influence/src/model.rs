//! Pluggable competition models: how a covered user's influence is split
//! between the entrant and the user's incumbent facility set.
//!
//! The paper's MC²LS objective hard-codes the *cumulative* model — a user
//! `o` already served by `|F_o| = w` competitor facilities contributes
//! exactly `1/(w+1)` to the entrant's collective influence `cinf`. The
//! per-weight-class count matrices every selector materialises carry
//! exactly that `w` statistic, so generalising the objective only requires
//! swapping the per-class weight: a [`CompetitionModel`] maps a weight
//! class `w` and a covered-user count `n` to the class's gain
//! contribution, and declares whether the induced set function is still
//! monotone submodular (greedy/CELF-safe) or must be routed to the exact
//! branch-and-bound oracle.
//!
//! Two models ship:
//!
//! * [`Model::Cumulative`] — the paper's `n/(w+1)`, kept **bit-identical**
//!   to the pre-trait code: one division per class, accumulated in
//!   ascending class order by the canonical gain walk.
//! * [`Model::Logit`] — a random-utility (logit/RUM) share. Each facility
//!   `f` in the user's choice set has utility `u_f`; the entrant's share
//!   is `exp(u_c)/Σ_f exp(u_f)`. With incumbent utilities normalised to 0
//!   and a fixed entrant advantage `γ =` [`LOGIT_GAMMA`] (newer sites win
//!   ties), the share over `w` incumbents is `e^γ/(e^γ + w) =
//!   1/(1 + w·e^{-γ})` — evaluated through the bounded-error
//!   [`exp_neg`] fast path (its argument `-γ` is a negative constant, so
//!   the fast path's `x ≤ 0` contract holds by construction).
//!
//! Both shipped models assign every class a fixed non-negative weight, so
//! their objectives are non-negative weighted coverage functions — monotone
//! and submodular — and all three selectors return byte-identical
//! solutions for them. A model reporting [`is_submodular`] = `false`
//! (e.g. a complementarity model with mixed-sign weights) is routed by
//! `mc2ls-core` to the exact branch-and-bound oracle instead of greedy,
//! where the marginal-gain argument no longer certifies a `1-1/e` bound.
//!
//! [`is_submodular`]: CompetitionModel::is_submodular

use crate::lanes::exp_neg;
use serde::{Deserialize, Serialize};

/// Entrant utility advantage `γ` of the logit model: the new facility's
/// systematic utility over the (normalised-to-zero) incumbents. At `γ =
/// 0.5` an uncontested user yields share 1, one incumbent leaves
/// `1/(1+e^{-0.5}) ≈ 0.622` — strictly kinder to contested users than the
/// cumulative model's `0.5`, decaying to the same `~1/w` tail.
pub const LOGIT_GAMMA: f64 = 0.5;

/// A competition model: per-weight-class contribution to the collective
/// influence plus the structural declaration the selector router needs.
///
/// The contract mirrors the canonical gain walk in `mc2ls-core`: a gain is
/// `Σ_w class_contribution(w, n_w)` accumulated in ascending `w` with zero
/// counts skipped. Implementations must be pure functions of `(w, n)` —
/// the bit-identity of solutions across selectors, thread counts, and
/// shard layouts rests on every code path computing the same contribution
/// from the same counts.
pub trait CompetitionModel {
    /// Stable human-readable name (CLI value, report label).
    fn name(&self) -> &'static str;

    /// Gain contribution of `n` covered users in weight class `w` (each
    /// already served by `w` competitor facilities).
    ///
    /// Implementations should compute the class total in one expression
    /// (e.g. `n as f64 / denominator(w)`), not as `n` summed singletons:
    /// the canonical gain accumulates one term per class, and a different
    /// association would change low-order bits.
    fn class_contribution(&self, w: usize, n: u32) -> f64;

    /// Whether the induced objective is monotone submodular. `true`
    /// certifies greedy/CELF/decremental selection (all byte-identical);
    /// `false` routes selection to the exact branch-and-bound oracle.
    fn is_submodular(&self) -> bool;
}

/// The shipped competition models, as carried by `Problem`, the `.mc2s`
/// META section, and the serve wire protocol. Serialises as its
/// [`name`](CompetitionModel::name) string.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Model {
    /// The paper's cumulative-probability split: `n/(w+1)` per class.
    #[default]
    Cumulative,
    /// Logit/RUM share with entrant advantage [`LOGIT_GAMMA`]:
    /// `n/(1 + w·e^{-γ})` per class.
    Logit,
}

impl Model {
    /// Parses a CLI `--model` value. Accepts the [`name`] strings.
    ///
    /// [`name`]: CompetitionModel::name
    pub fn parse(s: &str) -> Option<Model> {
        match s {
            "cumulative" => Some(Model::Cumulative),
            "logit" => Some(Model::Logit),
            _ => None,
        }
    }

    /// Stable wire id for the `.mc2s` META section (u32, append-only).
    pub fn id(&self) -> u32 {
        match self {
            Model::Cumulative => 0,
            Model::Logit => 1,
        }
    }

    /// Inverse of [`Model::id`]; `None` for ids minted by a newer writer.
    pub fn from_id(id: u32) -> Option<Model> {
        match id {
            0 => Some(Model::Cumulative),
            1 => Some(Model::Logit),
            _ => None,
        }
    }

    /// One-byte discriminant for result-cache keys.
    pub fn tag(&self) -> u8 {
        match self {
            Model::Cumulative => 0,
            Model::Logit => 1,
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl CompetitionModel for Model {
    fn name(&self) -> &'static str {
        match self {
            Model::Cumulative => "cumulative",
            Model::Logit => "logit",
        }
    }

    fn class_contribution(&self, w: usize, n: u32) -> f64 {
        match self {
            // The pre-trait expression, verbatim: one division per class.
            Model::Cumulative => n as f64 / (w as f64 + 1.0),
            // Logit share 1/(1 + w·e^{-γ}) per user, n users per class.
            Model::Logit => n as f64 / (1.0 + w as f64 * exp_neg(-LOGIT_GAMMA)),
        }
    }

    fn is_submodular(&self) -> bool {
        // Fixed non-negative per-class weights ⇒ weighted coverage ⇒
        // monotone submodular, for both shipped models.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_matches_the_paper_weights() {
        let m = Model::Cumulative;
        assert_eq!(m.class_contribution(0, 1), 1.0);
        assert_eq!(m.class_contribution(1, 1), 0.5);
        assert_eq!(m.class_contribution(3, 2), 0.5);
        // Bit-identical to the canonical expression for arbitrary counts.
        for w in 0..64usize {
            for n in [0u32, 1, 2, 7, 1000] {
                let expected = n as f64 / (w as f64 + 1.0);
                assert_eq!(m.class_contribution(w, n).to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn logit_share_is_a_rum_share() {
        let m = Model::Logit;
        // Uncontested user: full share, exactly 1.
        assert_eq!(m.class_contribution(0, 1), 1.0);
        // One incumbent: e^γ/(e^γ+1), within the fast path's error band.
        let exact = LOGIT_GAMMA.exp() / (LOGIT_GAMMA.exp() + 1.0);
        let got = m.class_contribution(1, 1);
        assert!((got - exact).abs() < 1e-5, "got {got}, exact {exact}");
        // Strictly decreasing in w, exactly n-linear (one shared
        // denominator per class), always in (0, 1] per user.
        let mut prev = f64::INFINITY;
        for w in 0..32usize {
            let share = m.class_contribution(w, 1);
            assert!(share > 0.0 && share <= 1.0);
            assert!(share < prev);
            let denom = 1.0 + w as f64 * exp_neg(-LOGIT_GAMMA);
            assert_eq!(
                m.class_contribution(w, 3).to_bits(),
                (3.0f64 / denom).to_bits()
            );
            prev = share;
        }
        // Logit favours contested users relative to cumulative: the RUM
        // entrant keeps more than 1/(w+1) whenever γ > 0.
        let cumulative = Model::Cumulative;
        for w in 1..16usize {
            assert!(m.class_contribution(w, 1) > cumulative.class_contribution(w, 1));
        }
    }

    #[test]
    fn ids_tags_names_round_trip() {
        for model in [Model::Cumulative, Model::Logit] {
            assert_eq!(Model::from_id(model.id()), Some(model));
            assert_eq!(Model::parse(model.name()), Some(model));
            assert_eq!(model.to_string(), model.name());
        }
        assert_eq!(Model::from_id(999), None);
        assert_eq!(Model::parse("nested-logit"), None);
        assert_eq!(Model::default(), Model::Cumulative);
        assert_ne!(Model::Cumulative.tag(), Model::Logit.tag());
    }

    #[test]
    fn models_serialise_as_name_strings() {
        use serde::{Deserialize as _, Serialize as _};
        let v = Model::Logit.to_value();
        assert_eq!(v.as_str(), Some("Logit"));
        assert_eq!(Model::from_value(&v).ok(), Some(Model::Logit));
        let c = Model::Cumulative.to_value();
        assert_eq!(Model::from_value(&c).ok(), Some(Model::Cumulative));
    }

    #[test]
    fn shipped_models_declare_submodularity() {
        assert!(Model::Cumulative.is_submodular());
        assert!(Model::Logit.is_submodular());
    }
}
