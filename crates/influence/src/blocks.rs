//! Blocked SoA verification substrate for the exact `Pr_v(o) ≥ τ` decision.
//!
//! [`influences`](crate::influences) walks a user's positions in storage
//! order, paying one distance + one `PF` call per position, and its failure
//! stop is bounded by the globally loose `PF(0)^remaining`. This module
//! replaces that per-position walk with a *block-bounded* evaluation:
//!
//! * [`PositionBlocks`] — every user's positions, Morton-sorted and split
//!   into fixed-size blocks stored as flat `x[]`/`y[]` SoA arrays, each
//!   block carrying its MBR and count. Built once per problem; immutable
//!   and `Sync`, so one structure serves all candidates and all workers.
//! * [`influences_blocked`] — the decision kernel. `PF` is monotone
//!   non-increasing, so for a block `B` with MBR `R` and `n` positions the
//!   per-block product of "keep" factors is bracketed:
//!
//!   ```text
//!   (1 − PF(min_dist(v, R)))ⁿ  ≤  Π_{p ∈ B} (1 − PF(d(v, p)))  ≤  (1 − PF(max_dist(v, R)))ⁿ
//!   ```
//!
//!   Multiplying the per-block brackets gives two-sided bounds on the whole
//!   product `Π(1 − PF(dᵢ))`: when the upper bound is already `≤ 1 − τ` the
//!   user is influenced, when the lower bound is `> 1 − τ` they are not —
//!   in either case **without touching a single position**. Inconclusive
//!   users are resolved by visiting blocks closest-first and evaluating
//!   inside a block over fixed-width SoA lanes, with the early stops
//!   tightened from `PF(0)^remaining` to the product of the *remaining
//!   blocks'* bounds.
//!
//! # The lane kernel and the fast-PF error band
//!
//! [`influences_blocked`] walks each opened block in [`LANE`]-wide chunks:
//! distances land in a fixed `[f64; LANE]` scratch array with no
//! per-element branching, `PF` is evaluated through
//! [`ProbabilityFunction::prob_lanes`] (the sigmoid/exponential override
//! replaces `exp` with the bounded-error `exp_neg` fast path), and the
//! kernel maintains a *single* fast running product `prod` plus an additive
//! error band `band` that grows by the PF's published [`lane_error_bound`]
//! `ε` per evaluated position. Every keep factor — fast or true — lies in
//! `[0, 1]`, so
//!
//! ```text
//! |Π f̃ᵢ − Π fᵢ|  ≤  Σ |f̃ᵢ − fᵢ|  ≤  (positions evaluated) · ε
//! ```
//!
//! and the bracket `[max(0, prod − band), min(1, prod + band)]` always
//! contains the exact product. (A single multiply chain keeps the fast
//! walk's serial FP latency identical to the exact walk's; maintaining two
//! clamped per-element chains would double it and erase the fast path's
//! win.) Both early stops use the conservative side of the bracket — upper
//! for the success stop, lower for the failure stop — so a fast-path stop
//! is always justified by a true bound on the exact product: the decision
//! is the one the exact kernel would make. Only when the walk finishes with
//! `1 − τ` strictly inside the bracket (the target fell inside the error
//! band, which the `fast_fallbacks` counter records) does the kernel
//! consult the exact `exp` path, re-running the user with `PF::prob` so the
//! final decision is bit-identical to the exact kernel's.
//!
//! [`influences_blocked_scalar`] preserves the per-position scalar walk
//! (exact `PF::prob`, per-position stops) as the reference kernel the
//! `BENCH_verify` experiment A/Bs the lane kernel against.
//!
//! [`lane_error_bound`]: ProbabilityFunction::lane_error_bound

use crate::lanes::{pow_n, LANE};
use crate::{CountEvals, ProbabilityFunction};
use mc2ls_geo::{
    hilbert_code, morton_code, ByteReader, ByteWriter, CodecError, Point, Rect, Square,
};
use std::cell::Cell;

/// Default positions per block when a fixed size is requested without a
/// value; the auto-tune probe ([`auto_block_size`]) clamps around it.
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// `Problem::block_size` sentinel: derive the block size per dataset from
/// the one-pass density probe ([`auto_block_size`]). This is the default.
pub const BLOCK_SIZE_AUTO: usize = 0;

/// `Problem::block_size` sentinel: skip the blocked substrate entirely and
/// run the plain per-position kernel (`influences`).
pub const BLOCK_SIZE_PLAIN: usize = usize::MAX;

/// Space-filling-curve depth: 16 levels = a 65536² virtual grid over each
/// user's MBR, far finer than any real block split needs.
const CURVE_DEPTH: usize = 16;

/// Which space-filling curve orders each user's positions before they are
/// chunked into blocks. A build-time choice: the ordering only affects
/// which positions share a block (and hence MBR tightness and the kernel's
/// open rate), never a decision — both orderings assign positions to grid
/// cells through the identical [`mc2ls_geo::grid_coords`] descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockOrdering {
    /// Morton (z-order): cheapest keys, takes diagonal jumps between
    /// quadrants.
    #[default]
    Morton,
    /// Hilbert curve: unit-step traversal, tighter runs of adjacent cells.
    Hilbert,
}

/// Derives a block size from a one-pass density probe over `users`.
///
/// The probe balances two costs: more blocks mean more bound evaluations
/// per user, larger blocks mean looser MBRs (weaker bounds, more opened
/// positions). Starting point is `√r̄` (blocks ≈ positions per block at the
/// average trajectory length `r̄`), rounded up to a full [`LANE`] multiple
/// so chunks stay full-width; when most positions belong to *dense* users
/// (trajectory MBR no larger in km than the position count — many revisits
/// per km), blocks double: tight MBRs keep bounds sharp even when coarse.
/// The result is clamped to `[LANE, 2 · DEFAULT_BLOCK_SIZE]`.
///
/// Deterministic (a pure fold over the user list), so every thread and
/// every run resolves the same size.
pub fn auto_block_size(users: &[crate::MovingUser]) -> usize {
    let mut total = 0usize;
    let mut dense = 0usize;
    for u in users {
        let r = u.len();
        total += r;
        let mbr = u.mbr();
        let span = mbr.width().max(mbr.height());
        if (r as f64) >= span {
            dense += r;
        }
    }
    if total == 0 {
        return DEFAULT_BLOCK_SIZE;
    }
    let avg = total as f64 / users.len() as f64;
    let rounded = match avg.sqrt().ceil() as usize {
        0 => LANE,
        t => t.div_ceil(LANE) * LANE,
    };
    let adjusted = if 2 * dense >= total {
        rounded * 2
    } else {
        rounded
    };
    adjusted.clamp(LANE, 2 * DEFAULT_BLOCK_SIZE)
}

/// Maps a configured `Problem::block_size` to the size the substrate is
/// actually built with: `None` for [`BLOCK_SIZE_PLAIN`] (no blocking), the
/// probed size for [`BLOCK_SIZE_AUTO`], the value itself otherwise.
pub fn resolve_block_size(users: &[crate::MovingUser], configured: usize) -> Option<usize> {
    match configured {
        BLOCK_SIZE_PLAIN => None,
        BLOCK_SIZE_AUTO => Some(auto_block_size(users)),
        fixed => Some(fixed),
    }
}

/// All users' positions in Morton order, chunked into fixed-size blocks
/// with per-block MBRs — the structure-of-arrays substrate the blocked
/// verification kernel reads.
///
/// Layout: positions live in flat `xs`/`ys` arrays; block `b` owns
/// `block_offsets[b]..block_offsets[b+1]` of them plus `rects[b]`; user `o`
/// owns blocks `user_offsets[o]..user_offsets[o+1]`. All arrays are
/// immutable after [`PositionBlocks::build`], so the structure is `Sync`
/// and shared by reference across verification workers.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionBlocks {
    xs: Vec<f64>,
    ys: Vec<f64>,
    rects: Vec<Rect>,
    block_offsets: Vec<u32>,
    user_offsets: Vec<u32>,
    block_size: usize,
}

impl PositionBlocks {
    /// Builds the blocked layout for `users` in the default
    /// [`BlockOrdering::Morton`] order, `block_size` positions per block
    /// (the last block of a user may be smaller).
    ///
    /// # Panics
    /// Panics when `block_size == 0`.
    pub fn build(users: &[crate::MovingUser], block_size: usize) -> Self {
        Self::build_ordered(users, block_size, BlockOrdering::default())
    }

    /// [`PositionBlocks::build`] with an explicit space-filling-curve
    /// ordering.
    ///
    /// Positions are ordered by their curve code over the user's own MBR
    /// (ties broken by original position index), so consecutive positions
    /// are spatially close and block MBRs stay tight. The ordering changes
    /// block composition only — every kernel decision is identical across
    /// orderings (asserted by the equivalence tests); what moves is the
    /// open rate, measured by `BENCH_verify`.
    ///
    /// # Panics
    /// Panics when `block_size == 0`.
    pub fn build_ordered(
        users: &[crate::MovingUser],
        block_size: usize,
        ordering: BlockOrdering,
    ) -> Self {
        assert!(block_size >= 1, "block_size must be at least 1");
        let total: usize = users.iter().map(crate::MovingUser::len).sum();
        let mut xs = Vec::with_capacity(total);
        let mut ys = Vec::with_capacity(total);
        let mut rects = Vec::new();
        let mut block_offsets = vec![0u32];
        let mut user_offsets = Vec::with_capacity(users.len() + 1);
        user_offsets.push(0u32);

        let mut keyed: Vec<(u64, u32)> = Vec::new();
        for u in users {
            let mbr = u.mbr();
            // A square root over the MBR (degenerate side 0 is fine: all
            // positions then share one code and the original order holds).
            let root = Square::new(mbr.min, mbr.width().max(mbr.height()));
            keyed.clear();
            keyed.extend(u.positions().iter().enumerate().map(|(i, p)| {
                let code = match ordering {
                    BlockOrdering::Morton => morton_code(&root, CURVE_DEPTH, p),
                    BlockOrdering::Hilbert => hilbert_code(&root, CURVE_DEPTH, p),
                };
                // lint:allow(narrowing-cast): i indexes one user's positions; r_max fits the u32 id space
                (code, i as u32)
            }));
            keyed.sort_unstable();
            for chunk in keyed.chunks(block_size) {
                let first = u.positions()[chunk[0].1 as usize];
                let mut rect = Rect::point(first);
                for &(_, i) in chunk {
                    let p = u.positions()[i as usize];
                    xs.push(p.x);
                    ys.push(p.y);
                    rect.expand_to(&p);
                }
                rects.push(rect);
                // lint:allow(narrowing-cast): total position count fits u32: positions are addressed by u32 ids
                block_offsets.push(xs.len() as u32);
            }
            // lint:allow(narrowing-cast): block count is bounded by position count, which fits u32
            user_offsets.push(rects.len() as u32);
        }

        PositionBlocks {
            xs,
            ys,
            rects,
            block_offsets,
            user_offsets,
            block_size,
        }
    }

    /// Number of users the structure covers.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Total number of blocks across all users.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.rects.len()
    }

    /// The configured positions-per-block target.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The global block-index range owned by `user`.
    #[inline]
    pub fn user_blocks(&self, user: u32) -> std::ops::Range<usize> {
        let o = user as usize;
        self.user_offsets[o] as usize..self.user_offsets[o + 1] as usize
    }

    /// The MBR of block `b`.
    #[inline]
    pub fn block_rect(&self, b: usize) -> &Rect {
        &self.rects[b]
    }

    /// Number of positions in block `b`.
    #[inline]
    pub fn block_len(&self, b: usize) -> usize {
        (self.block_offsets[b + 1] - self.block_offsets[b]) as usize
    }

    /// The SoA coordinate slices of block `b`.
    #[inline]
    pub fn block_positions(&self, b: usize) -> (&[f64], &[f64]) {
        let range = self.block_offsets[b] as usize..self.block_offsets[b + 1] as usize;
        (&self.xs[range.clone()], &self.ys[range])
    }

    /// Structural sanitizer: checks the SoA/offset invariants the blocked
    /// kernel relies on. Always callable; the body compiles away in
    /// release builds.
    ///
    /// # Panics
    /// Panics (debug builds only) when the offset arrays are malformed, a
    /// block is empty or overfull, or a position lies outside its block's
    /// MBR.
    pub fn validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(self.xs.len(), self.ys.len(), "xs/ys length mismatch");
            assert_eq!(
                self.block_offsets.len(),
                self.rects.len() + 1,
                "one offset pair per block"
            );
            assert_eq!(
                self.block_offsets[self.block_offsets.len() - 1] as usize,
                self.xs.len(),
                "block offsets must end at the position count"
            );
            assert_eq!(
                self.user_offsets[self.user_offsets.len() - 1] as usize,
                self.rects.len(),
                "user offsets must end at the block count"
            );
            assert!(
                self.user_offsets.windows(2).all(|w| w[0] <= w[1]),
                "user offsets not non-decreasing"
            );
            for b in 0..self.n_blocks() {
                let len = self.block_len(b);
                assert!(
                    len >= 1 && len <= self.block_size,
                    "block {b} holds {len} positions (block_size {})",
                    self.block_size
                );
                let (xs, ys) = self.block_positions(b);
                let rect = &self.rects[b];
                for (x, y) in xs.iter().zip(ys) {
                    assert!(
                        rect.contains(&Point { x: *x, y: *y }),
                        "position outside its block MBR"
                    );
                }
            }
        }
    }

    /// Encodes the structure into the pinned little-endian byte layout
    /// (block size, SoA coordinate arrays, per-block MBRs as four `f64`s,
    /// both offset arrays) used by the `.mc2s` snapshot format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            48 + 16 * self.xs.len()
                + 32 * self.rects.len()
                + 4 * (self.block_offsets.len() + self.user_offsets.len()),
        );
        w.put_u64(self.block_size as u64);
        w.put_f64_slice(&self.xs);
        w.put_f64_slice(&self.ys);
        w.put_len(self.rects.len());
        for rect in &self.rects {
            w.put_f64(rect.min.x);
            w.put_f64(rect.min.y);
            w.put_f64(rect.max.x);
            w.put_f64(rect.max.y);
        }
        w.put_u32_slice(&self.block_offsets);
        w.put_u32_slice(&self.user_offsets);
        w.into_bytes()
    }

    /// Decodes [`PositionBlocks::to_bytes`] output, checking the SoA and
    /// offset invariants the blocked kernel relies on (including that every
    /// position sits inside its block's MBR, so corrupt coordinate or MBR
    /// bits cannot silently change kernel decisions). Corrupt input yields
    /// a typed [`CodecError`], never a panic.
    ///
    /// # Errors
    /// [`CodecError::Truncated`]/[`CodecError::BadLength`] on short or
    /// length-corrupt input, [`CodecError::Invalid`] on violated
    /// structural invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let block_size_raw = r.get_u64()?;
        let block_size = usize::try_from(block_size_raw)
            .ok()
            .filter(|&b| b >= 1)
            .ok_or(CodecError::Invalid("block_size must be a positive usize"))?;
        let xs = r.get_f64_vec("PositionBlocks.xs")?;
        let ys = r.get_f64_vec("PositionBlocks.ys")?;
        let n_rects = r.get_len("PositionBlocks.rects", 32)?;
        let mut rects = Vec::with_capacity(n_rects);
        for _ in 0..n_rects {
            let min = Point::new(r.get_f64()?, r.get_f64()?);
            let max = Point::new(r.get_f64()?, r.get_f64()?);
            if !(min.is_finite() && max.is_finite() && min.x <= max.x && min.y <= max.y) {
                return Err(CodecError::Invalid("block MBR is not a finite rectangle"));
            }
            rects.push(Rect { min, max });
        }
        let block_offsets = r.get_u32_vec("PositionBlocks.block_offsets")?;
        let user_offsets = r.get_u32_vec("PositionBlocks.user_offsets")?;
        r.expect_end()?;

        if xs.len() != ys.len() {
            return Err(CodecError::Invalid("xs/ys length mismatch"));
        }
        if block_offsets.len() != rects.len() + 1 || block_offsets.first() != Some(&0) {
            return Err(CodecError::Invalid("malformed block offsets"));
        }
        if block_offsets[rects.len()] as usize != xs.len()
            || !block_offsets.windows(2).all(|w| w[0] <= w[1])
        {
            return Err(CodecError::Invalid("block offsets do not cover the SoA"));
        }
        if user_offsets.first() != Some(&0)
            || user_offsets[user_offsets.len() - 1] as usize != rects.len()
            || !user_offsets.windows(2).all(|w| w[0] <= w[1])
        {
            return Err(CodecError::Invalid("malformed user offsets"));
        }
        for (b, w) in block_offsets.windows(2).enumerate() {
            let len = (w[1] - w[0]) as usize;
            if len == 0 || len > block_size {
                return Err(CodecError::Invalid("block length outside 1..=block_size"));
            }
            let rect = &rects[b];
            let range = w[0] as usize..w[1] as usize;
            if !xs[range.clone()]
                .iter()
                .zip(&ys[range])
                .all(|(&x, &y)| rect.contains(&Point { x, y }))
            {
                return Err(CodecError::Invalid("position outside its block MBR"));
            }
        }
        Ok(PositionBlocks {
            xs,
            ys,
            rects,
            block_offsets,
            user_offsets,
            block_size,
        })
    }
}

/// Per-worker scratch of the blocked kernel: per-block bounds and the
/// closest-first visit order, reused across calls so the hot path never
/// allocates once the vectors have grown to the largest block count seen.
#[derive(Debug, Default)]
pub struct BlockScratch {
    order: Vec<u32>,
    dmin: Vec<f64>,
    flo: Vec<f64>,
    fhi: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    suffix_lb: Vec<f64>,
    suffix_ub: Vec<f64>,
    // Per-chunk-boundary remainder bounds of the block currently being
    // walked (lane kernel only): entry c is the bound product for
    // everything after chunk c — this block's remaining positions and all
    // unopened blocks. Built backward with one multiply per chunk instead
    // of a `pow_n` pair per stop check.
    chunk_ub: Vec<f64>,
    chunk_lb: Vec<f64>,
}

impl BlockScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Block-level counters of the blocked kernel, mirroring
/// [`EvalCounter`](crate::EvalCounter)'s interior-mutable design: one
/// instance per worker, summed at join (addition commutes, so the totals
/// are thread-count independent).
#[derive(Debug, Default)]
pub struct BlockCounters {
    bounded_out: Cell<u64>,
    opened: Cell<u64>,
    fallbacks: Cell<u64>,
}

impl BlockCounters {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks whose positions were never touched because block bounds
    /// decided the user first.
    pub fn bounded_out(&self) -> u64 {
        self.bounded_out.get()
    }

    /// Blocks opened for in-block lane evaluation.
    pub fn opened(&self) -> u64 {
        self.opened.get()
    }

    /// Users whose fast-path walk ended with `1 − τ` inside the error band
    /// and were re-decided on the exact `exp` path. Deterministic per user
    /// (the band depends only on geometry and τ), so the total is
    /// thread-count invariant. Such users' blocks are re-opened by the
    /// exact pass, so `opened` counts them twice.
    pub fn fast_fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    #[inline]
    fn add_bounded(&self, n: u64) {
        self.bounded_out.set(self.bounded_out.get() + n);
    }

    #[inline]
    fn add_opened(&self, n: u64) {
        self.opened.set(self.opened.get() + n);
    }

    #[inline]
    fn add_fallbacks(&self, n: u64) {
        self.fallbacks.set(self.fallbacks.get() + n);
    }

    /// Adds another counter set's totals into this one (per-worker
    /// counters summed at join).
    pub fn merge(&self, other: &BlockCounters) {
        self.add_bounded(other.bounded_out());
        self.add_opened(other.opened());
        self.add_fallbacks(other.fast_fallbacks());
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.bounded_out.set(0);
        self.opened.set(0);
        self.fallbacks.set(0);
    }
}

/// The blocked `Pr_v(o) ≥ τ` decision for `user` — identical to
/// [`influences`](crate::influences) over the same positions, evaluating
/// (usually far) fewer of them over [`LANE`]-wide chunks with the fast-PF
/// error-band bracket. See the module docs for the bound derivation and
/// the exactness argument.
///
/// # Examples
/// ```
/// use mc2ls_geo::Point;
/// use mc2ls_influence::{influences_blocked, BlockScratch, MovingUser, PositionBlocks, Sigmoid};
///
/// let users = vec![MovingUser::new(vec![Point::ORIGIN, Point::ORIGIN])];
/// let blocks = PositionBlocks::build(&users, 16);
/// let mut scratch = BlockScratch::new();
/// let pf = Sigmoid::paper_default(); // PF(0) = 0.5 ⇒ Pr = 0.75
/// assert!(influences_blocked(&pf, &Point::ORIGIN, &blocks, 0, 0.7, &mut scratch));
/// assert!(!influences_blocked(&pf, &Point::ORIGIN, &blocks, 0, 0.8, &mut scratch));
/// ```
pub fn influences_blocked<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
) -> bool {
    influences_blocked_impl::<PF, crate::EvalCounter>(
        pf, v, blocks, user, tau, scratch, None, None, false,
    )
}

/// [`influences_blocked`] that also counts evaluated positions (any
/// [`CountEvals`] impl; the lane kernel counts whole chunks, so a stop
/// mid-block still charges the full chunk it evaluated) and block outcomes
/// (bounded out / opened / fast fallbacks) for the verification-cost
/// experiments.
#[allow(clippy::too_many_arguments)] // mirrors influences_counted + block instrumentation
pub fn influences_blocked_counted<PF: ProbabilityFunction + ?Sized, C: CountEvals + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
    counter: &C,
    block_counters: &BlockCounters,
) -> bool {
    influences_blocked_impl(
        pf,
        v,
        blocks,
        user,
        tau,
        scratch,
        Some(counter),
        Some(block_counters),
        false,
    )
}

/// [`influences_blocked`] on the exact `exp` path only: the lane walk runs
/// with `PF::prob` per position and an empty error band, never consulting
/// the fast-PF approximation. The `--pf-exact` debugging/A-B mode.
pub fn influences_blocked_exact<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
) -> bool {
    influences_blocked_impl::<PF, crate::EvalCounter>(
        pf, v, blocks, user, tau, scratch, None, None, true,
    )
}

/// [`influences_blocked_exact`] with evaluation and block counting.
#[allow(clippy::too_many_arguments)] // mirrors influences_blocked_counted
pub fn influences_blocked_exact_counted<
    PF: ProbabilityFunction + ?Sized,
    C: CountEvals + ?Sized,
>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
    counter: &C,
    block_counters: &BlockCounters,
) -> bool {
    influences_blocked_impl(
        pf,
        v,
        blocks,
        user,
        tau,
        scratch,
        Some(counter),
        Some(block_counters),
        true,
    )
}

/// The pre-lane blocked kernel: per-position scalar walk with exact
/// `PF::prob` calls and per-position stops. Kept as the reference the
/// `BENCH_verify` experiment A/Bs the lane kernel's throughput against;
/// decisions are identical to [`influences_blocked`].
pub fn influences_blocked_scalar<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
) -> bool {
    influences_blocked_scalar_impl::<PF, crate::EvalCounter>(
        pf, v, blocks, user, tau, scratch, None, None,
    )
}

/// [`influences_blocked_scalar`] with evaluation and block counting (this
/// kernel counts per position, not per chunk).
#[allow(clippy::too_many_arguments)] // mirrors influences_blocked_counted
pub fn influences_blocked_scalar_counted<
    PF: ProbabilityFunction + ?Sized,
    C: CountEvals + ?Sized,
>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
    counter: &C,
    block_counters: &BlockCounters,
) -> bool {
    influences_blocked_scalar_impl(
        pf,
        v,
        blocks,
        user,
        tau,
        scratch,
        Some(counter),
        Some(block_counters),
    )
}

/// Shared kernel prologue: per-block factor bounds, the closest-first visit
/// order, and the suffix-product arrays, written into `scratch`.
///
/// For block j with n positions and per-position factor `f = 1 − PF(d)`:
/// `f ∈ [flo, fhi]` with `flo = 1 − PF(dmin)` and `fhi = 1 − PF(dmax)`
/// (block bounds always use the exact `PF::prob` — they are evaluated once
/// per block, not per position, so the fast path buys nothing there and
/// exactness keeps both kernels' bound arrays bit-identical), so the block
/// product lies in `[powⁿ(flo), powⁿ(fhi)]`.
fn fill_block_bounds<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    brange: &std::ops::Range<usize>,
    s: &mut BlockScratch,
) {
    let nb = brange.len();
    s.order.clear();
    s.dmin.clear();
    s.flo.clear();
    s.fhi.clear();
    s.lb.clear();
    s.ub.clear();
    for (local, b) in brange.clone().enumerate() {
        let rect = blocks.block_rect(b);
        let dmin = rect.min_distance(v);
        let dmax = rect.max_distance(v);
        let n = blocks.block_len(b);
        let flo = 1.0 - pf.prob(dmin);
        let fhi = 1.0 - pf.prob(dmax);
        // lint:allow(narrowing-cast): local indexes the per-user block list, bounded by the u32 block count
        s.order.push(local as u32);
        s.dmin.push(dmin);
        s.flo.push(flo);
        s.fhi.push(fhi);
        s.lb.push(pow_n(flo, n));
        s.ub.push(pow_n(fhi, n));
    }

    // Closest blocks first (ties toward the lower block index, which keeps
    // the visit order — and hence the evaluation counts — deterministic).
    {
        let dmin = &s.dmin;
        s.order.sort_unstable_by(|&a, &b| {
            dmin[a as usize]
                .total_cmp(&dmin[b as usize])
                .then(a.cmp(&b))
        });
    }

    // suffix_lb[t] / suffix_ub[t]: product of the [t..] blocks' bounds in
    // visit order; index nb is the empty product.
    s.suffix_lb.resize(nb + 1, 1.0);
    s.suffix_ub.resize(nb + 1, 1.0);
    s.suffix_lb[nb] = 1.0;
    s.suffix_ub[nb] = 1.0;
    for t in (0..nb).rev() {
        let j = s.order[t] as usize;
        s.suffix_lb[t] = s.suffix_lb[t + 1] * s.lb[j];
        s.suffix_ub[t] = s.suffix_ub[t + 1] * s.ub[j];
    }
}

/// Aggregate-bounds early decision: decides the user without touching any
/// position when the whole-product bracket is already conclusive.
#[inline]
fn aggregate_decision(
    s: &BlockScratch,
    nb: usize,
    target: f64,
    block_counters: Option<&BlockCounters>,
) -> Option<bool> {
    let decided = if s.suffix_ub[0] <= target {
        Some(true)
    } else if s.suffix_lb[0] > target {
        Some(false)
    } else {
        None
    };
    if decided.is_some() {
        if let Some(bc) = block_counters {
            bc.add_bounded(nb as u64);
        }
    }
    decided
}

#[allow(clippy::too_many_arguments)]
fn influences_blocked_impl<PF: ProbabilityFunction + ?Sized, C: CountEvals + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
    counter: Option<&C>,
    block_counters: Option<&BlockCounters>,
    pf_exact: bool,
) -> bool {
    debug_assert!((0.0..=1.0).contains(&tau));
    let target = 1.0 - tau;
    let brange = blocks.user_blocks(user);
    let nb = brange.len();
    if nb == 0 {
        // No positions: Pr = 0, influenced only when τ = 0 (target = 1).
        return 1.0 <= target;
    }

    let s = scratch;
    fill_block_bounds(pf, v, blocks, &brange, s);
    if let Some(decided) = aggregate_decision(s, nb, target, block_counters) {
        return decided;
    }

    // The lane walk. `prod` carries one running keep-product; in fast mode
    // its distance to the exact product is bounded *additively*: every
    // factor — fast or true — lies in [0, 1], so
    // `|Π fast − Π true| ≤ Σ |fastᵢ − trueᵢ| ≤ evals · ε`
    // with ε the PF's published lane error bound. The bracket
    // `[prod − band, prod + band]` is therefore derived only at chunk
    // boundaries, keeping the inner loop to a single multiply chain (the
    // dual per-element clamped chains this replaces doubled the serial
    // latency and made the fast path slower than the exact one). In exact
    // mode (and for PFs with no fast path, ε = 0) the band is zero and
    // `prod` is the exact kernel's product.
    let err = if pf_exact { 0.0 } else { pf.lane_error_bound() };
    let mut prod = 1.0f64;
    let mut band = 0.0f64;
    let mut d = [0.0f64; LANE];
    let mut p = [0.0f64; LANE];
    for t in 0..nb {
        let j = s.order[t] as usize;
        if let Some(bc) = block_counters {
            bc.add_opened(1);
        }
        let (xs, ys) = blocks.block_positions(brange.start + j);
        let n = xs.len();
        let (flo, fhi) = (s.flo[j], s.fhi[j]);
        // Remainder bounds per chunk boundary, built backward with one
        // multiply per chunk: entry c bounds the product of everything
        // after chunk c (this block's remaining positions, then the
        // unopened blocks). Replaces a `pow_n` pair inside every stop
        // check with a table lookup.
        let nc = n.div_ceil(LANE);
        s.chunk_ub.resize(nc, 0.0);
        s.chunk_lb.resize(nc, 0.0);
        s.chunk_ub[nc - 1] = s.suffix_ub[t + 1];
        s.chunk_lb[nc - 1] = s.suffix_lb[t + 1];
        if nc > 1 {
            // The last chunk may be partial; every earlier one is LANE wide.
            let tail = n - LANE * (nc - 1);
            s.chunk_ub[nc - 2] = s.chunk_ub[nc - 1] * pow_n(fhi, tail);
            s.chunk_lb[nc - 2] = s.chunk_lb[nc - 1] * pow_n(flo, tail);
            if nc > 2 {
                let fhi_lane = pow_n(fhi, LANE);
                let flo_lane = pow_n(flo, LANE);
                for c in (0..nc - 2).rev() {
                    s.chunk_ub[c] = s.chunk_ub[c + 1] * fhi_lane;
                    s.chunk_lb[c] = s.chunk_lb[c + 1] * flo_lane;
                }
            }
        }
        let mut i = 0;
        let mut chunk = 0;
        while i < n {
            let m = LANE.min(n - i);
            // Distance lanes: fixed-width, branch-free over the chunk, so
            // the compiler can vectorise the subtract/multiply/sqrt run.
            for ((dd, &px), &py) in d[..m].iter_mut().zip(&xs[i..i + m]).zip(&ys[i..i + m]) {
                let dx = px - v.x;
                let dy = py - v.y;
                *dd = (dx * dx + dy * dy).sqrt();
            }
            if pf_exact {
                for &dist in &d[..m] {
                    prod *= 1.0 - pf.prob(dist);
                }
            } else {
                // Full chunks pass the whole fixed-width arrays: after
                // inlining, the trip count is the constant `LANE`, which is
                // what actually unlocks the vectorised `prob_lanes` body
                // (a runtime-length tail slice compiles to the scalar loop).
                // The chunk's keep product is reduced as a pairwise tree —
                // depth log₂ LANE instead of a LANE-long serial multiply
                // chain. The association order only changes which rounding
                // the *fast* product carries (≤ LANE·2⁻⁵³ per chunk, five
                // orders below the ε·evals band); the exact-mode chain
                // below keeps the strict left-to-right order that the
                // fallback path and `influences_blocked_exact` share.
                if m == LANE {
                    pf.prob_lanes(&d, &mut p);
                    let f = [
                        (1.0 - p[0]) * (1.0 - p[1]),
                        (1.0 - p[2]) * (1.0 - p[3]),
                        (1.0 - p[4]) * (1.0 - p[5]),
                        (1.0 - p[6]) * (1.0 - p[7]),
                    ];
                    prod *= (f[0] * f[1]) * (f[2] * f[3]);
                } else {
                    pf.prob_lanes(&d[..m], &mut p[..m]);
                    for &q in &p[..m] {
                        prod *= 1.0 - q;
                    }
                }
                band += m as f64 * err;
            }
            if let Some(c) = counter {
                c.add(m as u64);
            }
            i += m;
            // Two-sided stops at chunk boundaries, each on the conservative
            // side of the bracket: the unvisited remainder is bracketed by
            // this block's per-position bounds to the power of its
            // remaining count times the unopened blocks' bound products —
            // much tighter than the global `PF(0)^remaining` budget.
            if (prod + band).min(1.0) * s.chunk_ub[chunk] <= target {
                if let Some(bc) = block_counters {
                    bc.add_bounded((nb - t - 1) as u64);
                }
                return true;
            }
            if (prod - band).max(0.0) * s.chunk_lb[chunk] > target {
                if let Some(bc) = block_counters {
                    bc.add_bounded((nb - t - 1) as u64);
                }
                return false;
            }
            chunk += 1;
        }
    }
    // Walk finished without a conclusive stop. With a zero band the
    // product is the exact kernel's full product and `≤ target` is the
    // decision itself. Otherwise decide only when the bracket clears the
    // target on one side; a target inside the error band is the one case
    // the fast kernel cannot decide, so re-run this user on the exact path
    // (terminates: the exact pass has pf_exact = true).
    if pf_exact || band == 0.0 {
        return prod <= target;
    }
    if (prod + band).min(1.0) <= target {
        return true;
    }
    if (prod - band).max(0.0) > target {
        return false;
    }
    if let Some(bc) = block_counters {
        bc.add_fallbacks(1);
    }
    influences_blocked_impl(pf, v, blocks, user, tau, s, counter, block_counters, true)
}

/// The scalar reference walk: identical bounds and visit order, exact
/// `PF::prob` per position, stops checked after every position.
#[allow(clippy::too_many_arguments)]
fn influences_blocked_scalar_impl<PF: ProbabilityFunction + ?Sized, C: CountEvals + ?Sized>(
    pf: &PF,
    v: &Point,
    blocks: &PositionBlocks,
    user: u32,
    tau: f64,
    scratch: &mut BlockScratch,
    counter: Option<&C>,
    block_counters: Option<&BlockCounters>,
) -> bool {
    debug_assert!((0.0..=1.0).contains(&tau));
    let target = 1.0 - tau;
    let brange = blocks.user_blocks(user);
    let nb = brange.len();
    if nb == 0 {
        return 1.0 <= target;
    }

    let s = scratch;
    fill_block_bounds(pf, v, blocks, &brange, s);
    if let Some(decided) = aggregate_decision(s, nb, target, block_counters) {
        return decided;
    }

    let mut product = 1.0f64;
    for t in 0..nb {
        let j = s.order[t] as usize;
        if let Some(bc) = block_counters {
            bc.add_opened(1);
        }
        let (xs, ys) = blocks.block_positions(brange.start + j);
        let n = xs.len();
        let (flo, fhi) = (s.flo[j], s.fhi[j]);
        for i in 0..n {
            if let Some(c) = counter {
                c.add(1);
            }
            let dx = xs[i] - v.x;
            let dy = ys[i] - v.y;
            product *= 1.0 - pf.prob((dx * dx + dy * dy).sqrt());
            let rem = n - i - 1;
            if product * pow_n(fhi, rem) * s.suffix_ub[t + 1] <= target {
                if let Some(bc) = block_counters {
                    bc.add_bounded((nb - t - 1) as u64);
                }
                return true;
            }
            if product * pow_n(flo, rem) * s.suffix_lb[t + 1] > target {
                if let Some(bc) = block_counters {
                    bc.add_bounded((nb - t - 1) as u64);
                }
                return false;
            }
        }
    }
    // Unreachable for nb ≥ 1 (the last in-block check is the full-product
    // decision), kept as the honest fallback.
    product <= target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cumulative_probability, influences, EvalCounter, MovingUser, Sigmoid};

    fn users_ring(n_users: usize, r: usize) -> Vec<MovingUser> {
        (0..n_users)
            .map(|u| {
                MovingUser::new(
                    (0..r)
                        .map(|i| {
                            let a = (u * r + i) as f64 * 0.37;
                            Point::new(
                                u as f64 * 3.0 + a.cos() * (1.0 + i as f64 * 0.1),
                                a.sin() * (1.0 + i as f64 * 0.1),
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn layout_partitions_every_position() {
        let users = users_ring(5, 23);
        let blocks = PositionBlocks::build(&users, 7);
        assert_eq!(blocks.n_users(), 5);
        for (o, u) in users.iter().enumerate() {
            let total: usize = blocks
                .user_blocks(o as u32)
                .map(|b| blocks.block_len(b))
                .sum();
            assert_eq!(total, u.len(), "user {o}");
            for b in blocks.user_blocks(o as u32) {
                assert!(blocks.block_len(b) <= 7);
                let (xs, ys) = blocks.block_positions(b);
                let rect = blocks.block_rect(b);
                for (x, y) in xs.iter().zip(ys) {
                    assert!(rect.contains(&Point::new(*x, *y)));
                }
            }
        }
    }

    #[test]
    fn blocked_decision_matches_plain_kernel() {
        let users = users_ring(6, 31);
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&users, 4);
        let mut scratch = BlockScratch::new();
        for tau in [0.05, 0.3, 0.5, 0.7, 0.95] {
            for (o, u) in users.iter().enumerate() {
                for v in [Point::ORIGIN, Point::new(o as f64 * 3.0, 0.5)] {
                    let want = influences(&pf, &v, u.positions(), tau);
                    let got = influences_blocked(&pf, &v, &blocks, o as u32, tau, &mut scratch);
                    assert_eq!(got, want, "user {o} tau {tau} v {v:?}");
                }
            }
        }
    }

    #[test]
    fn block_size_one_and_huge_agree() {
        let users = users_ring(4, 17);
        let pf = Sigmoid::paper_default();
        let fine = PositionBlocks::build(&users, 1);
        let coarse = PositionBlocks::build(&users, 1000);
        let mut scratch = BlockScratch::new();
        for (o, u) in users.iter().enumerate() {
            let v = Point::new(1.0, -2.0);
            let want = cumulative_probability(&pf, &v, u.positions()) >= 0.6;
            for blocks in [&fine, &coarse] {
                assert_eq!(
                    influences_blocked(&pf, &v, blocks, o as u32, 0.6, &mut scratch),
                    want
                );
            }
        }
    }

    #[test]
    fn far_user_is_bounded_out_without_evaluations() {
        let users = vec![MovingUser::new(
            (0..32)
                .map(|i| Point::new(100.0 + i as f64 * 0.01, 50.0))
                .collect(),
        )];
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&users, 8);
        let mut scratch = BlockScratch::new();
        let evals = EvalCounter::new();
        let bc = BlockCounters::new();
        assert!(!influences_blocked_counted(
            &pf,
            &Point::ORIGIN,
            &blocks,
            0,
            0.5,
            &mut scratch,
            &evals,
            &bc
        ));
        assert_eq!(evals.get(), 0, "no position may be touched");
        assert_eq!(bc.bounded_out(), blocks.n_blocks() as u64);
        assert_eq!(bc.opened(), 0);
    }

    #[test]
    fn near_user_is_accepted_without_evaluations() {
        // 32 positions essentially at the query point: the aggregate upper
        // bound (1 − PF(max_dist))³² is far below 1 − τ.
        let users = vec![MovingUser::new(
            (0..32).map(|i| Point::new(i as f64 * 1e-6, 0.0)).collect(),
        )];
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&users, 8);
        let mut scratch = BlockScratch::new();
        let evals = EvalCounter::new();
        let bc = BlockCounters::new();
        assert!(influences_blocked_counted(
            &pf,
            &Point::ORIGIN,
            &blocks,
            0,
            0.9,
            &mut scratch,
            &evals,
            &bc
        ));
        assert_eq!(evals.get(), 0);
        assert_eq!(bc.bounded_out(), blocks.n_blocks() as u64);
    }

    #[test]
    fn blocked_never_evaluates_more_than_block_worths_needed() {
        // Mixed case: a near cluster and a far cluster; the far blocks must
        // never be opened once the near ones decide.
        let mut ps: Vec<Point> = (0..16).map(|i| Point::new(i as f64 * 0.01, 0.0)).collect();
        ps.extend((0..16).map(|i| Point::new(500.0 + i as f64, 0.0)));
        let users = vec![MovingUser::new(ps)];
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&users, 8);
        let mut scratch = BlockScratch::new();
        let evals = EvalCounter::new();
        let bc = BlockCounters::new();
        let got = influences_blocked_counted(
            &pf,
            &Point::ORIGIN,
            &blocks,
            0,
            0.9,
            &mut scratch,
            &evals,
            &bc,
        );
        assert!(got);
        assert!(evals.get() <= 16, "evaluated {}", evals.get());
        assert!(bc.opened() <= 2);
        assert_eq!(bc.opened() + bc.bounded_out(), blocks.n_blocks() as u64);
    }

    #[test]
    fn degenerate_taus() {
        let users = users_ring(3, 9);
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&users, 4);
        let mut scratch = BlockScratch::new();
        for (o, u) in users.iter().enumerate() {
            let v = Point::new(0.5, 0.5);
            // τ = 0: everyone is influenced (Pr ≥ 0 always).
            assert!(influences_blocked(
                &pf,
                &v,
                &blocks,
                o as u32,
                0.0,
                &mut scratch
            ));
            // τ → 1: the sigmoid (PF < 1) can never reach it.
            assert!(!influences_blocked(
                &pf,
                &v,
                &blocks,
                o as u32,
                1.0,
                &mut scratch
            ));
            assert_eq!(
                influences_blocked(&pf, &v, &blocks, o as u32, 0.999_999, &mut scratch),
                cumulative_probability(&pf, &v, u.positions()) >= 0.999_999
            );
        }
    }

    #[test]
    fn identical_positions_collapse_to_one_tight_block() {
        let users = vec![MovingUser::new(vec![Point::new(2.0, 2.0); 40])];
        let blocks = PositionBlocks::build(&users, 16);
        let pf = Sigmoid::paper_default();
        let mut scratch = BlockScratch::new();
        // Degenerate MBR (a point): bounds are exact, so every decision is
        // made from the bounds alone.
        let evals = EvalCounter::new();
        let bc = BlockCounters::new();
        let got = influences_blocked_counted(
            &pf,
            &Point::new(2.0, 2.0),
            &blocks,
            0,
            0.9,
            &mut scratch,
            &evals,
            &bc,
        );
        assert!(got);
        assert_eq!(evals.get(), 0);
    }

    #[test]
    fn byte_codec_round_trips_bit_identically() {
        let users = vec![
            MovingUser::new(vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 1.0),
                Point::new(-2.0, 4.0),
                Point::new(0.5, 0.5),
                Point::new(2.5, 2.5),
            ]),
            MovingUser::new(vec![Point::new(10.0, 10.0)]),
        ];
        for block_size in [1usize, 2, 16] {
            let blocks = PositionBlocks::build(&users, block_size);
            let decoded = PositionBlocks::from_bytes(&blocks.to_bytes()).expect("round trip");
            assert_eq!(decoded, blocks);
            decoded.validate();
        }
    }

    #[test]
    fn lane_scalar_and_exact_kernels_agree_everywhere() {
        let users = users_ring(6, 31);
        let pf = Sigmoid::paper_default();
        let mut scratch = BlockScratch::new();
        for bs in [1usize, 4, 16, 33] {
            let blocks = PositionBlocks::build(&users, bs);
            for tau in [0.0, 0.05, 0.3, 0.5, 0.7, 0.95, 1.0] {
                for (o, u) in users.iter().enumerate() {
                    for v in [Point::ORIGIN, Point::new(o as f64 * 3.0, 0.5)] {
                        let want = influences(&pf, &v, u.positions(), tau);
                        let o = o as u32;
                        let lane = influences_blocked(&pf, &v, &blocks, o, tau, &mut scratch);
                        let exact =
                            influences_blocked_exact(&pf, &v, &blocks, o, tau, &mut scratch);
                        let scalar =
                            influences_blocked_scalar(&pf, &v, &blocks, o, tau, &mut scratch);
                        assert_eq!(lane, want, "lane: user {o} tau {tau} bs {bs} v {v:?}");
                        assert_eq!(exact, want, "exact: user {o} tau {tau} bs {bs} v {v:?}");
                        assert_eq!(scalar, want, "scalar: user {o} tau {tau} bs {bs} v {v:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn hilbert_ordering_changes_layout_but_never_a_decision() {
        let users = users_ring(6, 29);
        let pf = Sigmoid::paper_default();
        let morton = PositionBlocks::build_ordered(&users, 8, BlockOrdering::Morton);
        let hilbert = PositionBlocks::build_ordered(&users, 8, BlockOrdering::Hilbert);
        hilbert.validate();
        // Same partition granularity either way.
        assert_eq!(morton.n_blocks(), hilbert.n_blocks());
        for (o, u) in users.iter().enumerate() {
            let total: usize = hilbert
                .user_blocks(o as u32)
                .map(|b| hilbert.block_len(b))
                .sum();
            assert_eq!(total, u.len(), "user {o}");
        }
        let mut scratch = BlockScratch::new();
        for tau in [0.05, 0.5, 0.95] {
            for (o, u) in users.iter().enumerate() {
                for v in [Point::new(1.0, -1.0), Point::new(o as f64 * 3.0, 0.5)] {
                    let want = influences(&pf, &v, u.positions(), tau);
                    for blocks in [&morton, &hilbert] {
                        assert_eq!(
                            influences_blocked(&pf, &v, blocks, o as u32, tau, &mut scratch),
                            want,
                            "user {o} tau {tau} v {v:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn auto_block_size_is_deterministic_and_lane_aligned() {
        let sparse = users_ring(5, 23);
        let a = auto_block_size(&sparse);
        assert_eq!(a, auto_block_size(&sparse), "pure fold must be stable");
        assert!((LANE..=2 * DEFAULT_BLOCK_SIZE).contains(&a));
        assert_eq!(a % LANE, 0, "auto size {a} must fill whole lanes");
        // Dense users (many positions inside a tiny MBR) double the size.
        let dense = vec![MovingUser::new(vec![Point::new(2.0, 2.0); 23]); 5];
        assert!(auto_block_size(&dense) >= a);
        assert_eq!(auto_block_size(&[]), DEFAULT_BLOCK_SIZE);
    }

    #[test]
    fn resolve_block_size_maps_the_sentinels() {
        let users = users_ring(3, 9);
        assert_eq!(resolve_block_size(&users, BLOCK_SIZE_PLAIN), None);
        assert_eq!(
            resolve_block_size(&users, BLOCK_SIZE_AUTO),
            Some(auto_block_size(&users))
        );
        assert_eq!(resolve_block_size(&users, 7), Some(7));
    }

    /// A PF that advertises a deliberately huge lane error band and biases
    /// its lane path low: the fast walk must end inconclusive for some
    /// users, fall back to the exact pass (fallbacks > 0), and still return
    /// exactly the plain kernel's decisions.
    struct SloppyPf(Sigmoid);

    impl ProbabilityFunction for SloppyPf {
        fn prob(&self, d: f64) -> f64 {
            self.0.prob(d)
        }

        fn prob_lanes(&self, d: &[f64], out: &mut [f64]) {
            for (o, &x) in out.iter_mut().zip(d) {
                *o = (self.0.prob(x) - 0.02).max(0.0);
            }
        }

        fn lane_error_bound(&self) -> f64 {
            0.05
        }

        fn inverse(&self, p: f64) -> Option<f64> {
            self.0.inverse(p)
        }

        fn max_probability(&self) -> f64 {
            self.0.max_probability()
        }
    }

    #[test]
    fn error_band_fallback_keeps_decisions_exact() {
        let users = users_ring(6, 31);
        let pf = SloppyPf(Sigmoid::paper_default());
        let blocks = PositionBlocks::build(&users, 8);
        let mut scratch = BlockScratch::new();
        let evals = EvalCounter::new();
        let bc = BlockCounters::new();
        let mut decided = 0u64;
        for tau in [0.05, 0.3, 0.5, 0.7, 0.95] {
            for (o, u) in users.iter().enumerate() {
                for v in [Point::ORIGIN, Point::new(o as f64 * 3.0, 0.5)] {
                    let want = influences(&pf.0, &v, u.positions(), tau);
                    let got = influences_blocked_counted(
                        &pf,
                        &v,
                        &blocks,
                        o as u32,
                        tau,
                        &mut scratch,
                        &evals,
                        &bc,
                    );
                    assert_eq!(got, want, "user {o} tau {tau} v {v:?}");
                    decided += 1;
                }
            }
        }
        let fb = bc.fast_fallbacks();
        assert!(fb > 0, "a 0.05-wide band must trap some decisions");
        assert!(fb <= decided);
    }

    #[test]
    fn byte_codec_rejects_corruption_without_panicking() {
        let users = vec![MovingUser::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 2.0),
        ])];
        let bytes = PositionBlocks::build(&users, 2).to_bytes();
        for cut in 0..bytes.len() {
            assert!(PositionBlocks::from_bytes(&bytes[..cut]).is_err(), "{cut}");
        }
        // A NaN coordinate can never sit inside its block's MBR.
        let mut bad = bytes.clone();
        let x0 = 8 + 8; // block_size, xs length prefix
        bad[x0..x0 + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(PositionBlocks::from_bytes(&bad).is_err());
        // A zero block size is structurally invalid.
        let mut zero = bytes;
        for b in &mut zero[..8] {
            *b = 0;
        }
        assert!(PositionBlocks::from_bytes(&zero).is_err());
    }
}
