//! The probability-based influence model over moving users (paper §III-A).
//!
//! This crate is the substrate every MC²LS algorithm builds on:
//!
//! * [`ProbabilityFunction`] — the distance-based utility `PF(d)` that maps
//!   the distance between an abstract facility and one user position to an
//!   influence probability. The paper's experiments use the sigmoid
//!   `PF(d) = ρ/(1 + e^d)` ([`Sigmoid`]); [`Exponential`], [`Linear`] and
//!   [`Step`] model the alternative influence-preference semantics the
//!   related work discusses (range-based, linear-decay).
//! * [`cumulative_probability`] / [`influences`] — Definitions 1–2: a user is
//!   influenced when `Pr_v(o) = 1 − Π(1 − PF(d(v, pᵢ))) ≥ τ`, with the
//!   early-stopping evaluation from PINOCCHIO.
//! * [`min_max_radius`] (`mMR(τ,r)`), [`non_influence_radius`] (`NIR`) and
//!   [`eta`] (`η(τ, PF, d̂)`, Definition 8) — the radius/count thresholds
//!   behind the IA, NIB, IS and NIR pruning rules.
//! * [`MovingUser`] — a multi-position user with its cached MBR.
//! * [`PositionBlocks`] / [`influences_blocked`] — the blocked SoA
//!   verification substrate: curve-sorted fixed-size position blocks
//!   ([`BlockOrdering`]: Morton or Hilbert) with per-block MBR distance
//!   bounds that decide most users without touching their positions, and a
//!   [`LANE`]-wide chunked walk whose fast-PF error band is folded into
//!   the two-sided stops (same decisions, far fewer and far cheaper
//!   evaluations). `block_size` is self-tuned per dataset by
//!   [`auto_block_size`] when configured as [`BLOCK_SIZE_AUTO`].
//! * [`lanes`] — the bounded-error `exp` fast path ([`exp_neg`]) and its
//!   published error constants.
//! * [`CompetitionModel`] / [`Model`] — pluggable competition models: how
//!   a covered user's influence splits between the entrant and the user's
//!   incumbent facilities. The paper's cumulative `1/(|F_o|+1)` split is
//!   the bit-identical default; a logit/RUM share rides the [`exp_neg`]
//!   fast path. Non-submodular models are routed by `mc2ls-core` to exact
//!   branch-and-bound selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod cumulative;
pub mod lanes;
mod model;
mod pf;
mod radius;
mod user;

pub use blocks::{
    auto_block_size, influences_blocked, influences_blocked_counted, influences_blocked_exact,
    influences_blocked_exact_counted, influences_blocked_scalar, influences_blocked_scalar_counted,
    resolve_block_size, BlockCounters, BlockOrdering, BlockScratch, PositionBlocks,
    BLOCK_SIZE_AUTO, BLOCK_SIZE_PLAIN, DEFAULT_BLOCK_SIZE,
};
pub use cumulative::{
    cumulative_probability, influences, influences_counted, AtomicEvalCounter, CountEvals,
    EvalCounter,
};
pub use lanes::{exp_neg, pow_n, EXP_NEG_EPS, FAST_PF_EPS, LANE};
pub use model::{CompetitionModel, Model, LOGIT_GAMMA};
pub use pf::{Exponential, Linear, ProbabilityFunction, Sigmoid, Step};
pub use radius::{eta, eta_count, min_max_radius, non_influence_radius};
pub use user::{MovingUser, UserId};
