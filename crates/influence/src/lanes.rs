//! Lane-width math for the vectorised verification kernel: a bounded-error
//! `e^x` fast path and an integer power helper, both in safe scalar Rust
//! that the compiler auto-vectorises when called over fixed-width chunks.
//!
//! The kernel never trusts the fast path blindly: [`EXP_NEG_EPS`] and
//! [`FAST_PF_EPS`] are *published, test-enforced* error bounds that the
//! blocked kernel folds into its two-sided suffix-product stops, so a fast
//! evaluation can only ever make a decision that the exact `exp` kernel
//! would also make (see `blocks.rs` for the bracketing argument).

use std::f64::consts::{LN_2, LOG2_E};

/// Fixed lane width of the chunked verification kernel. Eight `f64`s span
/// one or two SIMD registers on every target the workspace builds for, and
/// the fixed-size `[f64; LANE]` scratch arrays keep the distance / PF loops
/// free of bounds checks and per-element branches.
pub const LANE: usize = 8;

/// Relative error bound of [`exp_neg`] against `f64::exp` on `[-700, 0]`:
/// `|exp_neg(x) − e^x| ≤ EXP_NEG_EPS · e^x`. Enforced by a dense-grid test;
/// the observed maximum is a few times smaller (the bound keeps margin for
/// future targets with different rounding of the polynomial). The value is
/// a deliberate speed/precision point: the degree-8 polynomial behind it is
/// measurably cheaper than one more term, and the kernel's error-band
/// fallback makes *any* published bound decision-exact — a looser band only
/// risks more exact-path fallbacks, and at this width the observed fallback
/// rate is still zero on every bench preset.
pub const EXP_NEG_EPS: f64 = 1e-9;

/// Per-unit-ρ absolute error budget of the lane PF evaluations
/// (`ProbabilityFunction::prob_lanes`): every fast PF guarantees
/// `|prob_lanes(d) − prob(d)| ≤ ρ · FAST_PF_EPS`. Set 10× above
/// [`EXP_NEG_EPS`] so the budget also absorbs the rounding of the
/// surrounding sigmoid/exponential formulas; the blocked kernel treats it
/// as the half-width of the factor bracket it maintains.
pub const FAST_PF_EPS: f64 = 1e-8;

/// Below this input the fast path returns `0.0` outright: `e^x < 1e-304`
/// there, an absolute error far inside every published PF bound, and the
/// cutoff keeps the `2^k` scaling inside the normal-exponent range.
const UNDERFLOW_CUTOFF: f64 = -700.0;

/// A bounded-error `e^x` for `x ≤ 0` — the fast path behind the sigmoid and
/// exponential PF lane evaluations.
///
/// Range reduction `x = k·ln 2 + r` with `|r| ≤ ln 2 / 2` (the subtraction
/// is exact by Sterbenz' lemma since `x` and `k·ln 2` agree to within half
/// a binade), a degree-8 Horner polynomial for `e^r` (truncation below
/// `3·10⁻¹⁰` relative), and a `2^k` scale built with `f64::from_bits` — no
/// `unsafe`, no table, no libm call. The nearest integer `k` comes from the
/// shifted-add trick (adding `1.5·2⁵²` forces rounding to the unit place
/// under round-to-nearest; `f64::round` lowers to a libm call on baseline
/// x86-64 and would dominate the whole evaluation), and `k` is read back
/// *from the mantissa bits of that sum* — `to_bits(x·log₂e + SHIFT) −
/// to_bits(SHIFT)` is exactly `k` in two's complement — so the scale is
/// assembled with pure `u64` adds and shifts, no `f64 → i64` cast. That
/// matters twice over: the cast instruction (`cvttsd2si`) is the one op in
/// the dependency chain with no packed SSE2 form, and removing it together
/// with the early-out branch leaves a straight-line body the compiler can
/// if-convert and auto-vectorise across lanes. Inputs below
/// [`UNDERFLOW_CUTOFF`] are clamped for the computation and the result is
/// selected to `0.0` at the end (absolute error `≤ 1e-304`); the relative
/// error everywhere else is bounded by [`EXP_NEG_EPS`], which the
/// dense-grid test enforces.
#[inline]
pub fn exp_neg(x: f64) -> f64 {
    debug_assert!(
        x <= 0.0 || x.is_nan(),
        "exp_neg takes non-positive inputs, got {x}"
    );
    // Clamp instead of returning early: the branchless select at the end
    // restores the exact-zero contract, and the straight-line body is what
    // lets LLVM vectorise `prob_lanes` chunks.
    let xc = if x < UNDERFLOW_CUTOFF {
        UNDERFLOW_CUTOFF
    } else {
        x
    };
    // 1.5·2⁵² — large enough that adding it leaves no fractional bits (so
    // the sum rounds to an integer), small enough to keep |x·log₂e| ≤ 2⁵¹
    // exact on subtraction. Half-way cases round to even instead of away
    // from zero; either neighbour keeps |r| ≤ (ln 2 + 1 ulp) / 2.
    const SHIFT: f64 = 1.5 * 4_503_599_627_370_496.0;
    let kf = xc * LOG2_E + SHIFT;
    let k = kf - SHIFT;
    let r = xc - k * LN_2;
    // e^r as its degree-8 Taylor polynomial (Horner form). With
    // |r| ≤ ln 2 / 2 the truncation term r⁹/9! stays below 3·10⁻¹⁰
    // relative to e^r ≥ 1/√2 — inside [`EXP_NEG_EPS`] with margin, and two
    // terms cheaper than the next precision step (see the constant's doc
    // for why this speed/precision point is the right one).
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0 + r * (1.0 / 5040.0 + r * (1.0 / 40320.0))))))));
    // 2^k for k ∈ [-1010, 0]: biased exponent k + 1023 ∈ [13, 1023] is
    // always a normal float, so the bit-assembled scale is exact. `kf`
    // shares SHIFT's binade (`kf = 1.5·2⁵² + k` with |k| ≤ 1010 keeps it in
    // [2⁵², 2⁵³)), so the bit patterns differ by exactly `k` in the mantissa
    // field and the wrapping u64 subtraction recovers `k` two's-complement —
    // no float→int conversion anywhere.
    let scale = f64::from_bits(
        kf.to_bits()
            .wrapping_sub(SHIFT.to_bits())
            .wrapping_add(1023)
            << 52,
    );
    let y = p * scale;
    if x < UNDERFLOW_CUTOFF {
        0.0
    } else {
        y
    }
}

/// `base^n` by binary exponentiation — the `powi` replacement on the
/// verification hot paths. Takes the exponent as `usize`, so block lengths
/// and remaining-position counts feed it without a narrowing cast, and it
/// runs an incremental running product of squarings (`O(log n)` multiplies)
/// instead of a libm call.
///
/// Like `powi`, each multiply rounds to nearest, so results can differ from
/// the true power by a few ulps in either direction — the same ambient
/// tolerance the suffix-product stops already carry (see `cumulative.rs`).
#[inline]
pub fn pow_n(base: f64, mut n: usize) -> f64 {
    let mut acc = 1.0f64;
    let mut sq = base;
    while n > 0 {
        if n & 1 == 1 {
            acc *= sq;
        }
        sq *= sq;
        n >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_neg_meets_its_published_bound_on_a_dense_grid() {
        // ~720k points across the full supported range, plus the reduction
        // boundaries k·ln2 ± δ where cancellation is worst.
        let mut worst = 0.0f64;
        let mut x = -700.0f64;
        while x <= 0.0 {
            let exact = x.exp();
            let fast = exp_neg(x);
            let rel = ((fast - exact) / exact).abs();
            if rel > worst {
                worst = rel;
            }
            x += 0.000_97;
        }
        for k in 0..1000 {
            for delta in [-1e-9, 0.0, 1e-9] {
                let x = -(k as f64) * LN_2 * 0.5 + delta;
                if x > 0.0 {
                    continue;
                }
                let exact = x.exp();
                let rel = ((exp_neg(x) - exact) / exact).abs();
                if rel > worst {
                    worst = rel;
                }
            }
        }
        assert!(worst <= EXP_NEG_EPS, "worst relative error {worst:e}");
    }

    #[test]
    fn exp_neg_edge_cases() {
        assert_eq!(exp_neg(0.0), 1.0);
        assert_eq!(exp_neg(-701.0), 0.0);
        assert_eq!(exp_neg(f64::NEG_INFINITY), 0.0);
        // Just above the cutoff the value is tiny but still relative-exact.
        let x = -699.9;
        let rel = ((exp_neg(x) - x.exp()) / x.exp()).abs();
        assert!(rel <= EXP_NEG_EPS);
    }

    #[test]
    fn exp_neg_is_monotone_on_a_coarse_grid() {
        let mut last = exp_neg(-700.0);
        let mut x = -700.0 + 0.125;
        while x <= 0.0 {
            let now = exp_neg(x);
            assert!(now >= last, "not monotone at {x}");
            last = now;
            x += 0.125;
        }
    }

    #[test]
    fn pow_n_small_cases_are_exact() {
        assert_eq!(pow_n(0.7, 0), 1.0);
        assert_eq!(pow_n(0.7, 1), 0.7);
        assert_eq!(pow_n(0.7, 2), 0.7 * 0.7);
        assert_eq!(pow_n(0.0, 5), 0.0);
        assert_eq!(pow_n(1.0, 1_000_000), 1.0);
    }

    #[test]
    fn pow_n_tracks_powi_within_ulps() {
        for &base in &[0.1, 0.5, 0.937, 0.999_99, 1.0] {
            for n in [3usize, 7, 16, 33, 100, 1023] {
                let a = pow_n(base, n);
                let b: f64 = base.powi(n as i32);
                if b == 0.0 {
                    assert!(a.abs() < 1e-300);
                } else {
                    assert!(((a - b) / b).abs() < 1e-12, "base {base} n {n}");
                }
            }
        }
    }
}
