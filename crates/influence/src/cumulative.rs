//! Cumulative influence probability (Definition 1) and the influence
//! predicate (Definition 2) with PINOCCHIO's early-stopping evaluation.

use crate::ProbabilityFunction;
use mc2ls_geo::Point;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Anything that can count position-probability evaluations.
///
/// The paper's Fig. 15(b)/16(b) report "verification computation cost" — the
/// number of per-position probability evaluations the verification phase
/// performs. Threading a `&mut u64` through every call site would infect
/// read-only query APIs, so counters are interior-mutable. Two impls:
/// [`EvalCounter`] (a `Cell`, the single-thread fast path) and
/// [`AtomicEvalCounter`] (`Sync`, shareable across workers). The parallel
/// pipeline prefers one `EvalCounter` *per worker*, summed at join — no
/// cache-line ping-pong, and the total is order-independent, keeping
/// reported statistics identical to a serial run.
pub trait CountEvals {
    /// Adds `n` evaluations.
    fn add(&self, n: u64);

    /// Current number of evaluated positions.
    fn get(&self) -> u64;
}

/// Single-threaded evaluation counter (`Cell`; `!Sync` by construction).
#[derive(Debug, Default)]
pub struct EvalCounter(Cell<u64>);

impl EvalCounter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of evaluated positions.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Adds `n` evaluations.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.set(0);
    }
}

impl CountEvals for EvalCounter {
    #[inline]
    fn add(&self, n: u64) {
        EvalCounter::add(self, n);
    }

    fn get(&self) -> u64 {
        EvalCounter::get(self)
    }
}

/// Thread-safe evaluation counter (relaxed atomics: only the final sum
/// matters, and addition commutes, so totals match serial runs exactly).
#[derive(Debug, Default)]
pub struct AtomicEvalCounter(AtomicU64);

impl AtomicEvalCounter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of evaluated positions.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `n` evaluations.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl CountEvals for AtomicEvalCounter {
    #[inline]
    fn add(&self, n: u64) {
        AtomicEvalCounter::add(self, n);
    }

    fn get(&self) -> u64 {
        AtomicEvalCounter::get(self)
    }
}

/// `Pr_v(o) = 1 − Π_{i=1..r} (1 − PF(d(v, pᵢ)))` — Definition 1, evaluated
/// in full (no early stopping). Used by tests and by callers that need the
/// exact probability rather than the threshold decision.
///
/// # Examples
/// ```
/// use mc2ls_geo::Point;
/// use mc2ls_influence::{cumulative_probability, Sigmoid};
///
/// let pf = Sigmoid::paper_default(); // PF(0) = 0.5
/// let site = Point::new(0.0, 0.0);
/// // Two visits at the site: Pr = 1 − 0.5² = 0.75.
/// let pr = cumulative_probability(&pf, &site, &[site, site]);
/// assert!((pr - 0.75).abs() < 1e-12);
/// ```
pub fn cumulative_probability<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    positions: &[Point],
) -> f64 {
    let mut not_influenced = 1.0f64;
    for p in positions {
        not_influenced *= 1.0 - pf.prob(v.distance(p));
    }
    1.0 - not_influenced
}

/// Definition 2 decision `Pr_v(o) ≥ τ` with two-sided early stopping:
///
/// * **success stop** (Algorithm 2, line 14): once the partial product
///   `Π(1 − PF(dᵢ)) ≤ 1 − τ`, the user is influenced regardless of the
///   remaining positions (probabilities only push the product down).
/// * **failure stop**: if even granting every remaining position the maximal
///   single-position probability `PF(0)` cannot push the product to
///   `1 − τ`, the user cannot be influenced.
///
/// Both stops are exact — they never change the decision — which the
/// property tests verify against [`cumulative_probability`].
pub fn influences<PF: ProbabilityFunction + ?Sized>(
    pf: &PF,
    v: &Point,
    positions: &[Point],
    tau: f64,
) -> bool {
    influences_impl::<PF, EvalCounter>(pf, v, positions, tau, None)
}

/// [`influences`] that also counts how many positions were actually
/// evaluated before a decision (for the verification-cost experiments).
/// Accepts any [`CountEvals`] impl, so serial callers keep the cheap
/// `Cell`-based [`EvalCounter`] while parallel callers may share an
/// [`AtomicEvalCounter`].
pub fn influences_counted<PF: ProbabilityFunction + ?Sized, C: CountEvals + ?Sized>(
    pf: &PF,
    v: &Point,
    positions: &[Point],
    tau: f64,
    counter: &C,
) -> bool {
    influences_impl(pf, v, positions, tau, Some(counter))
}

fn influences_impl<PF: ProbabilityFunction + ?Sized, C: CountEvals + ?Sized>(
    pf: &PF,
    v: &Point,
    positions: &[Point],
    tau: f64,
    counter: Option<&C>,
) -> bool {
    debug_assert!((0.0..=1.0).contains(&tau));
    let target = 1.0 - tau;
    let max_keep = 1.0 - pf.max_probability(); // smallest per-position factor
    let mut product = 1.0f64;
    let r = positions.len();
    // Failure-stop budget `max_keep^remaining`, maintained as a running
    // product: one binary exponentiation up front, then one multiply per
    // iteration. Division
    // by `max_keep` would be unsound (rounding could inflate the budget past
    // its true value and fire a wrong reject), so the tail is *multiplied* by
    // `1/max_keep` and clamped to 1.0 — the mathematical ceiling for any
    // `max_keep ≤ 1` power. An under-estimated tail merely delays the stop
    // (the final `product <= target` is still exact); it can never flip a
    // decision. `max_keep == 0` (PF(0) = 1) degrades the same way: tail 0
    // suppresses the stop and the loop decides exactly.
    let mut tail = if r > 1 {
        crate::lanes::pow_n(max_keep, r - 1)
    } else {
        1.0
    };
    let inv_keep = if max_keep > 0.0 { 1.0 / max_keep } else { 0.0 };
    for p in positions {
        if let Some(c) = counter {
            c.add(1);
        }
        product *= 1.0 - pf.prob(v.distance(p));
        if product <= target {
            return true; // success stop
        }
        // Even max influence at every remaining position cannot reach τ.
        if product * tail > target {
            return false; // failure stop
        }
        tail = (tail * inv_keep).min(1.0);
    }
    product <= target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sigmoid;

    /// Example 2 from the paper: with Pr(p₁₁)=0.6 and Pr(p₁₂)=0.3 the
    /// cumulative probability is 0.72. We reproduce the arithmetic with a
    /// bespoke PF that returns those probabilities at the given distances.
    struct TablePf;
    impl ProbabilityFunction for TablePf {
        fn prob(&self, d: f64) -> f64 {
            if d < 1.5 {
                0.6
            } else if d < 2.5 {
                0.3
            } else {
                0.0
            }
        }
        fn inverse(&self, _p: f64) -> Option<f64> {
            None
        }
    }

    #[test]
    fn paper_example2_cumulative_value() {
        let v = Point::ORIGIN;
        let positions = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let pr = cumulative_probability(&TablePf, &v, &positions);
        assert!((pr - 0.72).abs() < 1e-12);
        assert!(influences(&TablePf, &v, &positions, 0.7));
        assert!(!influences(&TablePf, &v, &positions, 0.73));
    }

    #[test]
    fn influence_decision_matches_full_evaluation() {
        let pf = Sigmoid::paper_default();
        let v = Point::new(0.0, 0.0);
        let positions: Vec<Point> = (0..20)
            .map(|i| Point::new(0.1 * i as f64, 0.05 * i as f64))
            .collect();
        for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let exact = cumulative_probability(&pf, &v, &positions) >= tau;
            assert_eq!(influences(&pf, &v, &positions, tau), exact, "tau={tau}");
        }
    }

    #[test]
    fn success_stop_counts_fewer_evaluations() {
        let pf = Sigmoid::paper_default();
        let v = Point::ORIGIN;
        // Many positions at distance 0: product shrinks by 0.5 per step, so
        // τ=0.9 is decided after ~4 positions.
        let positions = vec![Point::ORIGIN; 50];
        let counter = EvalCounter::new();
        assert!(influences_counted(&pf, &v, &positions, 0.9, &counter));
        assert!(counter.get() < 10, "evaluated {}", counter.get());
    }

    #[test]
    fn failure_stop_counts_fewer_evaluations() {
        let pf = Sigmoid::paper_default();
        let v = Point::ORIGIN;
        // 3 far positions then many far positions: once the remaining-budget
        // bound proves failure, evaluation must halt.
        let positions = vec![Point::new(50.0, 0.0); 100];
        let counter = EvalCounter::new();
        assert!(!influences_counted(&pf, &v, &positions, 0.9, &counter));
        assert!(counter.get() < 100, "evaluated {}", counter.get());
    }

    #[test]
    fn empty_position_product_never_influences_positive_tau() {
        let pf = Sigmoid::paper_default();
        assert!(!influences(&pf, &Point::ORIGIN, &[], 0.1));
        assert_eq!(cumulative_probability(&pf, &Point::ORIGIN, &[]), 0.0);
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let c = EvalCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn atomic_counter_matches_cell_counter_across_threads() {
        let pf = Sigmoid::paper_default();
        let v = Point::ORIGIN;
        let positions: Vec<Point> = (0..30).map(|i| Point::new(i as f64 * 0.3, 0.0)).collect();

        let serial = EvalCounter::new();
        for _ in 0..8 {
            influences_counted(&pf, &v, &positions, 0.8, &serial);
        }

        let shared = AtomicEvalCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..2 {
                        influences_counted(&pf, &v, &positions, 0.8, &shared);
                    }
                });
            }
        });
        assert_eq!(shared.get(), serial.get());
        shared.reset();
        assert_eq!(shared.get(), 0);
    }

    #[test]
    fn more_positions_never_decrease_probability() {
        // Lemma 4's algebraic core: adding positions can only increase Pr.
        let pf = Sigmoid::paper_default();
        let v = Point::ORIGIN;
        let mut positions = vec![Point::new(1.0, 0.0)];
        let mut last = cumulative_probability(&pf, &v, &positions);
        for i in 0..10 {
            positions.push(Point::new(2.0 + i as f64, 1.0));
            let now = cumulative_probability(&pf, &v, &positions);
            assert!(now >= last - 1e-15);
            last = now;
        }
    }
}
