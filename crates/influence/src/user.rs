use mc2ls_geo::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of a moving user: its index in the problem's user vector.
pub type UserId = u32;

/// A moving user `o = {p₁, …, p_r}` with its cached activity MBR
/// (paper §III-A).
///
/// Users always have at least one position; the paper trims single-position
/// users from the datasets, but the model and all algorithms remain correct
/// for `r = 1`, so construction only rejects the empty case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovingUser {
    positions: Vec<Point>,
    mbr: Rect,
}

impl MovingUser {
    /// Builds a user from a non-empty position list.
    ///
    /// # Panics
    /// Panics when `positions` is empty — a user without positions has no
    /// meaning in the influence model.
    pub fn new(positions: Vec<Point>) -> Self {
        let mbr =
            // lint:allow(panic-path): the documented panic contract of MovingUser::new (empty positions)
            Rect::bounding(&positions).expect("a moving user must have at least one position");
        MovingUser { positions, mbr }
    }

    /// The user's recorded positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Number of positions `r = |o|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always `false`; present for clippy's `len_without_is_empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The activity region (minimum bounding rectangle of all positions).
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// A new user keeping only the selected position indices (used by the
    /// Fig. 15/16 experiments that subsample `r` positions per user).
    ///
    /// # Panics
    /// Panics when `indices` is empty or contains an out-of-range index.
    pub fn subsample(&self, indices: &[usize]) -> MovingUser {
        let positions: Vec<Point> = indices.iter().map(|&i| self.positions[i]).collect();
        MovingUser::new(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_is_cached_bounding_box() {
        let u = MovingUser::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, -1.0),
            Point::new(1.0, 3.0),
        ]);
        assert_eq!(u.len(), 3);
        assert_eq!(
            *u.mbr(),
            Rect::new(Point::new(0.0, -1.0), Point::new(2.0, 3.0))
        );
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn rejects_empty_user() {
        MovingUser::new(vec![]);
    }

    #[test]
    fn single_position_user_has_point_mbr() {
        let u = MovingUser::new(vec![Point::new(1.0, 2.0)]);
        assert_eq!(u.mbr().area(), 0.0);
        assert!(u.mbr().contains(&Point::new(1.0, 2.0)));
    }

    #[test]
    fn subsample_keeps_selected_positions() {
        let u = MovingUser::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        let s = u.subsample(&[0, 2]);
        assert_eq!(s.positions(), &[Point::new(0.0, 0.0), Point::new(2.0, 2.0)]);
        assert_eq!(
            *s.mbr(),
            Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))
        );
    }
}
