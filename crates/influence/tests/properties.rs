//! Property-based tests for the influence model: the pruning thresholds
//! must never contradict the exact cumulative probability.

use mc2ls_geo::Point;
use mc2ls_influence::{
    cumulative_probability, eta_count, influences, influences_blocked, influences_blocked_exact,
    influences_blocked_scalar, min_max_radius, resolve_block_size, BlockScratch, Exponential,
    MovingUser, PositionBlocks, ProbabilityFunction, Sigmoid, BLOCK_SIZE_AUTO,
};
use proptest::prelude::*;

/// Block sizes the kernel-equivalence properties sweep: the degenerate
/// one-position block, a sub-lane size, the old default, and the auto
/// sentinel (resolved per generated dataset).
const KERNEL_BLOCK_SIZES: [usize; 4] = [1, 4, 16, BLOCK_SIZE_AUTO];

/// Asserts the lane (fast-PF), exact-`exp`, and scalar blocked kernels all
/// return the same decision for `user` across a τ sweep that includes both
/// boundaries and τ sitting *exactly on* the user's cumulative probability
/// (the knife edge where the fast path's error band is guaranteed to
/// matter, forcing the exact fallback). Interior τ is additionally checked
/// against the plain per-position kernel.
fn assert_kernel_trio_agrees<PF: ProbabilityFunction>(
    pf: &PF,
    v: &Point,
    user: &MovingUser,
    blocks: &PositionBlocks,
    o: u32,
    interior_tau: f64,
    scratch: &mut BlockScratch,
) {
    let pr = cumulative_probability(pf, v, user.positions());
    for t in [0.0, interior_tau, pr.clamp(0.0, 1.0), 1.0] {
        let lane = influences_blocked(pf, v, blocks, o, t, scratch);
        let exact = influences_blocked_exact(pf, v, blocks, o, t, scratch);
        let scalar = influences_blocked_scalar(pf, v, blocks, o, t, scratch);
        assert_eq!(lane, exact, "fast vs exact diverged: user {o} tau {t}");
        assert_eq!(lane, scalar, "fast vs scalar diverged: user {o} tau {t}");
    }
    assert_eq!(
        influences_blocked(pf, v, blocks, o, interior_tau, scratch),
        influences(pf, v, user.positions(), interior_tau),
        "fast vs plain diverged: user {o} tau {interior_tau}"
    );
}

fn pt() -> impl Strategy<Value = Point> {
    (-20.0f64..20.0, -20.0f64..20.0).prop_map(|(x, y)| Point::new(x, y))
}

fn positions() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..40)
}

fn tau() -> impl Strategy<Value = f64> {
    0.05f64..0.95
}

fn users() -> impl Strategy<Value = Vec<MovingUser>> {
    prop::collection::vec(positions().prop_map(MovingUser::new), 1..6)
}

fn block_size() -> impl Strategy<Value = usize> {
    1usize..40
}

proptest! {
    /// Early stopping must agree with the exact Definition 2 decision.
    #[test]
    fn early_stopping_is_exact(v in pt(), ps in positions(), t in tau()) {
        let pf = Sigmoid::paper_default();
        let exact = cumulative_probability(&pf, &v, &ps) >= t;
        prop_assert_eq!(influences(&pf, &v, &ps, t), exact);
    }

    /// Corollary 1: all r positions within mMR(τ, r) ⇒ influenced.
    #[test]
    fn corollary1_inside_mmr_influences(center in pt(), t in tau(), r in 1usize..30, seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        if let Some(mmr) = min_max_radius(&pf, t, r) {
            // Deterministic pseudo-random placement inside the circle.
            let ps: Vec<Point> = (0..r).map(|i| {
                let a = (seed as f64 * 0.618 + i as f64) % (2.0 * std::f64::consts::PI);
                let rad = mmr * (((seed + i as u64) % 97) as f64 / 97.0);
                Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
            }).collect();
            prop_assert!(influences(&pf, &center, &ps, t));
        }
    }

    /// Corollary 2: no position within mMR(τ, r) ⇒ not influenced.
    #[test]
    fn corollary2_outside_mmr_never_influences(center in pt(), t in tau(), r in 1usize..30, seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        let mmr = min_max_radius(&pf, t, r).unwrap_or(0.0);
        let ps: Vec<Point> = (0..r).map(|i| {
            let a = (seed as f64 * 0.37 + i as f64) % (2.0 * std::f64::consts::PI);
            let rad = mmr + 1e-6 + ((seed + i as u64) % 13) as f64;
            Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
        }).collect();
        prop_assert!(!influences(&pf, &center, &ps, t));
    }

    /// Lemma 1: ⌈η(τ, PF, d̂)⌉ positions within distance d̂ ⇒ influenced,
    /// for any extra positions anywhere.
    #[test]
    fn lemma1_eta_count_influences(center in pt(), t in tau(), d_hat in 0.1f64..4.0,
                                   extra in prop::collection::vec(pt(), 0..10), seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        if let Some(n) = eta_count(&pf, t, d_hat) {
            if n <= 200 {
                let mut ps: Vec<Point> = (0..n).map(|i| {
                    let a = (seed as f64 + i as f64 * 2.39996) % (2.0 * std::f64::consts::PI);
                    let rad = d_hat * ((i as u64 + seed) % 101) as f64 / 101.0;
                    Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
                }).collect();
                ps.extend(extra);
                prop_assert!(influences(&pf, &center, &ps, t));
            }
        }
    }

    /// Monotonicity (Lemma 4 core): appending positions never lowers Pr.
    #[test]
    fn appending_positions_monotone(v in pt(), ps in positions(), extra in pt()) {
        let pf = Exponential::new(0.9, 1.5);
        let before = cumulative_probability(&pf, &v, &ps);
        let mut more = ps.clone();
        more.push(extra);
        let after = cumulative_probability(&pf, &v, &more);
        prop_assert!(after >= before - 1e-12);
    }

    /// Pr is monotone non-increasing when the facility moves directly away
    /// from every position (PF monotone ⇒ cumulative monotone).
    #[test]
    fn probability_decreases_with_uniform_retreat(ps in positions(), shift in 0.0f64..10.0) {
        let pf = Sigmoid::paper_default();
        // Place v far east of the MBR, then move it farther east.
        let u = MovingUser::new(ps.clone());
        let base_x = u.mbr().max.x + 1.0;
        let near = Point::new(base_x, u.mbr().center().y);
        let far = Point::new(base_x + shift, u.mbr().center().y);
        // Moving straight east increases the distance to every position.
        let pr_near = cumulative_probability(&pf, &near, &ps);
        let pr_far = cumulative_probability(&pf, &far, &ps);
        prop_assert!(pr_far <= pr_near + 1e-12);
    }

    /// Probability is always in [0, 1].
    #[test]
    fn probability_in_unit_interval(v in pt(), ps in positions()) {
        let pf = Sigmoid::new(0.8);
        let pr = cumulative_probability(&pf, &v, &ps);
        prop_assert!((0.0..=1.0).contains(&pr));
    }

    /// The per-block factor bounds derived from the block MBR bracket the
    /// exact keep-product of the block's positions: PF is monotone
    /// non-increasing in distance, so every position's keep-factor
    /// `1 − PF(d)` lies in `[1 − PF(dmin), 1 − PF(dmax)]` and the block
    /// product in `[flo^n, fhi^n]`.
    #[test]
    fn block_bounds_bracket_exact_product(v in pt(), us in users(), bs in block_size()) {
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&us, bs);
        blocks.validate();
        for b in 0..blocks.n_blocks() {
            let rect = blocks.block_rect(b);
            let n = blocks.block_len(b) as i32;
            let flo = 1.0 - pf.prob(rect.min_distance(&v));
            let fhi = 1.0 - pf.prob(rect.max_distance(&v));
            let (xs, ys) = blocks.block_positions(b);
            let exact: f64 = xs.iter().zip(ys)
                .map(|(&x, &y)| 1.0 - pf.prob(v.distance(&Point::new(x, y))))
                .product();
            prop_assert!(flo.powi(n) <= exact + 1e-12,
                "lower bound {} above exact {}", flo.powi(n), exact);
            prop_assert!(fhi.powi(n) >= exact - 1e-12,
                "upper bound {} below exact {}", fhi.powi(n), exact);
        }
    }

    /// The blocked kernel is a pure optimisation: its decision equals the
    /// exact Definition 2 decision for every user, any block size.
    #[test]
    fn blocked_kernel_is_exact(v in pt(), us in users(), bs in block_size(), t in tau()) {
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&us, bs);
        blocks.validate();
        let mut scratch = BlockScratch::new();
        for (u, user) in us.iter().enumerate() {
            let exact = cumulative_probability(&pf, &v, user.positions()) >= t;
            prop_assert_eq!(
                influences_blocked(&pf, &v, &blocks, u as u32, t, &mut scratch),
                exact,
                "user {} diverged at block size {}", u, bs
            );
        }
    }

    /// Degenerate thresholds: τ = 0 accepts everyone (Pr ≥ 0 always);
    /// τ just below 1 — where PF(0) = 0.5 caps Pr of an r-position user at
    /// 1 − 2^−r — still matches the exact decision.
    #[test]
    fn blocked_kernel_handles_degenerate_taus(v in pt(), us in users(), bs in block_size()) {
        let pf = Sigmoid::paper_default();
        let blocks = PositionBlocks::build(&us, bs);
        blocks.validate();
        let mut scratch = BlockScratch::new();
        for (u, user) in us.iter().enumerate() {
            prop_assert!(influences_blocked(&pf, &v, &blocks, u as u32, 0.0, &mut scratch));
            let t = 1.0 - 1e-9;
            let exact = cumulative_probability(&pf, &v, user.positions()) >= t;
            prop_assert_eq!(influences_blocked(&pf, &v, &blocks, u as u32, t, &mut scratch), exact);
        }
    }

    /// The lane kernel's fast-PF decisions are bit-identical to the exact
    /// kernel's (and the scalar reference's) for the sigmoid PF, across
    /// boundary and knife-edge τ and the block-size sweep including auto.
    #[test]
    fn fast_pf_decisions_bit_identical_sigmoid(v in pt(), us in users(), t in tau()) {
        let pf = Sigmoid::paper_default();
        let mut scratch = BlockScratch::new();
        for bs in KERNEL_BLOCK_SIZES {
            let resolved = resolve_block_size(&us, bs).expect("fixed/auto always resolve");
            let blocks = PositionBlocks::build(&us, resolved);
            for (u, user) in us.iter().enumerate() {
                assert_kernel_trio_agrees(&pf, &v, user, &blocks, u as u32, t, &mut scratch);
            }
        }
    }

    /// Same bit-identity sweep for the exponential PF (the other fast-path
    /// override, exercising the `exp_neg(−d/σ)` lane).
    #[test]
    fn fast_pf_decisions_bit_identical_exponential(v in pt(), us in users(), t in tau()) {
        let pf = Exponential::new(0.9, 1.5);
        let mut scratch = BlockScratch::new();
        for bs in KERNEL_BLOCK_SIZES {
            let resolved = resolve_block_size(&us, bs).expect("fixed/auto always resolve");
            let blocks = PositionBlocks::build(&us, resolved);
            for (u, user) in us.iter().enumerate() {
                assert_kernel_trio_agrees(&pf, &v, user, &blocks, u as u32, t, &mut scratch);
            }
        }
    }

    /// All-identical positions collapse to point-rectangle blocks whose
    /// bounds are tight; the decision must still be exact.
    #[test]
    fn blocked_kernel_exact_on_identical_positions(v in pt(), p in pt(), r in 1usize..50,
                                                   bs in block_size(), t in tau()) {
        let pf = Sigmoid::paper_default();
        let us = vec![MovingUser::new(vec![p; r])];
        let blocks = PositionBlocks::build(&us, bs);
        blocks.validate();
        let mut scratch = BlockScratch::new();
        let exact = cumulative_probability(&pf, &v, &vec![p; r]) >= t;
        prop_assert_eq!(influences_blocked(&pf, &v, &blocks, 0, t, &mut scratch), exact);
    }
}
