//! Property-based tests for the influence model: the pruning thresholds
//! must never contradict the exact cumulative probability.

use mc2ls_geo::Point;
use mc2ls_influence::{
    cumulative_probability, eta_count, influences, min_max_radius, Exponential, MovingUser, Sigmoid,
};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-20.0f64..20.0, -20.0f64..20.0).prop_map(|(x, y)| Point::new(x, y))
}

fn positions() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..40)
}

fn tau() -> impl Strategy<Value = f64> {
    0.05f64..0.95
}

proptest! {
    /// Early stopping must agree with the exact Definition 2 decision.
    #[test]
    fn early_stopping_is_exact(v in pt(), ps in positions(), t in tau()) {
        let pf = Sigmoid::paper_default();
        let exact = cumulative_probability(&pf, &v, &ps) >= t;
        prop_assert_eq!(influences(&pf, &v, &ps, t), exact);
    }

    /// Corollary 1: all r positions within mMR(τ, r) ⇒ influenced.
    #[test]
    fn corollary1_inside_mmr_influences(center in pt(), t in tau(), r in 1usize..30, seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        if let Some(mmr) = min_max_radius(&pf, t, r) {
            // Deterministic pseudo-random placement inside the circle.
            let ps: Vec<Point> = (0..r).map(|i| {
                let a = (seed as f64 * 0.618 + i as f64) % (2.0 * std::f64::consts::PI);
                let rad = mmr * (((seed + i as u64) % 97) as f64 / 97.0);
                Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
            }).collect();
            prop_assert!(influences(&pf, &center, &ps, t));
        }
    }

    /// Corollary 2: no position within mMR(τ, r) ⇒ not influenced.
    #[test]
    fn corollary2_outside_mmr_never_influences(center in pt(), t in tau(), r in 1usize..30, seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        let mmr = min_max_radius(&pf, t, r).unwrap_or(0.0);
        let ps: Vec<Point> = (0..r).map(|i| {
            let a = (seed as f64 * 0.37 + i as f64) % (2.0 * std::f64::consts::PI);
            let rad = mmr + 1e-6 + ((seed + i as u64) % 13) as f64;
            Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
        }).collect();
        prop_assert!(!influences(&pf, &center, &ps, t));
    }

    /// Lemma 1: ⌈η(τ, PF, d̂)⌉ positions within distance d̂ ⇒ influenced,
    /// for any extra positions anywhere.
    #[test]
    fn lemma1_eta_count_influences(center in pt(), t in tau(), d_hat in 0.1f64..4.0,
                                   extra in prop::collection::vec(pt(), 0..10), seed in 0u64..1000) {
        let pf = Sigmoid::paper_default();
        if let Some(n) = eta_count(&pf, t, d_hat) {
            if n <= 200 {
                let mut ps: Vec<Point> = (0..n).map(|i| {
                    let a = (seed as f64 + i as f64 * 2.39996) % (2.0 * std::f64::consts::PI);
                    let rad = d_hat * ((i as u64 + seed) % 101) as f64 / 101.0;
                    Point::new(center.x + rad * a.cos(), center.y + rad * a.sin())
                }).collect();
                ps.extend(extra);
                prop_assert!(influences(&pf, &center, &ps, t));
            }
        }
    }

    /// Monotonicity (Lemma 4 core): appending positions never lowers Pr.
    #[test]
    fn appending_positions_monotone(v in pt(), ps in positions(), extra in pt()) {
        let pf = Exponential::new(0.9, 1.5);
        let before = cumulative_probability(&pf, &v, &ps);
        let mut more = ps.clone();
        more.push(extra);
        let after = cumulative_probability(&pf, &v, &more);
        prop_assert!(after >= before - 1e-12);
    }

    /// Pr is monotone non-increasing when the facility moves directly away
    /// from every position (PF monotone ⇒ cumulative monotone).
    #[test]
    fn probability_decreases_with_uniform_retreat(ps in positions(), shift in 0.0f64..10.0) {
        let pf = Sigmoid::paper_default();
        // Place v far east of the MBR, then move it farther east.
        let u = MovingUser::new(ps.clone());
        let base_x = u.mbr().max.x + 1.0;
        let near = Point::new(base_x, u.mbr().center().y);
        let far = Point::new(base_x + shift, u.mbr().center().y);
        // Moving straight east increases the distance to every position.
        let pr_near = cumulative_probability(&pf, &near, &ps);
        let pr_far = cumulative_probability(&pf, &far, &ps);
        prop_assert!(pr_far <= pr_near + 1e-12);
    }

    /// Probability is always in [0, 1].
    #[test]
    fn probability_in_unit_interval(v in pt(), ps in positions()) {
        let pf = Sigmoid::new(0.8);
        let pr = cumulative_probability(&pf, &v, &ps);
        prop_assert!((0.0..=1.0).contains(&pr));
    }
}
