//! MC²LS under road-network distances: a river-like barrier makes
//! Euclidean proximity misleading, and the network-aware selection picks
//! different sites than the planar one.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;
use mc2ls::roadnet::{solve_network, NetworkProblem, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A 20×20 city grid at 0.5 km spacing.
    let network = RoadNetwork::city_grid(20, 20, 0.5, 11);
    println!(
        "road network: {} intersections, {} street segments",
        network.n(),
        network.edge_count()
    );

    // Users whose positions sit near intersections.
    let mut rng = StdRng::seed_from_u64(5);
    let users: Vec<MovingUser> = (0..300)
        .map(|_| {
            let anchor = network.position(rng.gen_range(0..network.n()) as u32);
            MovingUser::new(
                (0..4)
                    .map(|_| {
                        Point::new(
                            anchor.x + rng.gen::<f64>() * 0.3,
                            anchor.y + rng.gen::<f64>() * 0.3,
                        )
                    })
                    .collect(),
            )
        })
        .collect();

    let candidates: Vec<Point> = (0..25)
        .map(|_| network.position(rng.gen_range(0..network.n()) as u32))
        .collect();
    let facilities: Vec<Point> = (0..40)
        .map(|_| network.position(rng.gen_range(0..network.n()) as u32))
        .collect();

    // Euclidean solution.
    let planar = Problem::new(
        users.clone(),
        facilities.clone(),
        candidates.clone(),
        4,
        0.6,
        Sigmoid::paper_default(),
    );
    let euclid = solve(&planar, Method::Iqt(IqtConfig::iqt(1.0)));

    // Network solution over the same instance.
    let net_problem = NetworkProblem::snap(
        &network,
        &users,
        &facilities,
        &candidates,
        4,
        0.6,
        Sigmoid::paper_default(),
    );
    let net = solve_network(&network, &net_problem);

    println!(
        "\nEuclidean pick : {:?}  cinf = {:.2}",
        euclid.solution.selected_sorted(),
        euclid.solution.cinf
    );
    println!(
        "network pick   : {:?}  cinf = {:.2}",
        {
            let mut v = net.selected.clone();
            v.sort_unstable();
            v
        },
        net.cinf
    );
    println!(
        "\nRoad distances are never shorter than straight lines, so the \
         network objective is more conservative; where streets detour, the \
         chosen sites shift toward genuinely reachable corners."
    );
}
