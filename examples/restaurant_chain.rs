//! The paper's motivating scenario (Fig. 1): *Wendy's* wants to open two
//! restaurants; *McDonald's* already operates competitors. This example
//! shows how ignoring the competition (the k-CIFP objective) and accounting
//! for it (the MC²LS objective) pick **different** site sets, and why the
//! competition-aware pick captures more market share.
//!
//! ```sh
//! cargo run --release --example restaurant_chain
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;

fn main() {
    // Users o1..o5, each with two recorded positions, laid out so that:
    //   c1 influences {o1, o2},  c2 influences {o2, o4},
    //   c3 influences {o1, o3},  c4 influences {o1, o2, o5}  (cf. Fig. 1d)
    //   f1 (McDonald's) influences {o1, o2}, f2 influences {o2, o4}.
    // Geometry: users sit in small clusters; candidates/facilities are
    // placed on top of the clusters they should influence.
    let users = vec![
        user_at(&[(0.0, 0.0), (0.3, 0.4)]),   // o1
        user_at(&[(2.0, 0.0), (2.3, 0.3)]),   // o2
        user_at(&[(-2.0, 2.0), (-1.8, 2.2)]), // o3
        user_at(&[(4.0, 0.0), (4.2, 0.2)]),   // o4
        user_at(&[(1.0, -2.0), (1.2, -1.8)]), // o5
    ];

    // Candidate sites for Wendy's.
    let candidates = vec![
        Point::new(1.1, 0.1),  // c1: between o1 and o2
        Point::new(3.1, 0.1),  // c2: between o2 and o4
        Point::new(-0.9, 1.1), // c3: between o1 and o3
        Point::new(1.1, -0.9), // c4: near o1, o2 and o5
    ];

    // Existing McDonald's restaurants.
    let facilities = vec![
        Point::new(1.0, 0.3), // f1: competes for o1, o2
        Point::new(3.0, 0.2), // f2: competes for o2, o4
    ];

    // τ = 0.3 gives mMR(τ, 2) ≈ 1.6 km — candidates influence exactly the
    // clusters they were placed next to (verified by the printed map).
    let tau = 0.3;
    let pf = Sigmoid::paper_default();

    // --- Without competition: pretend McDonald's does not exist. ---
    let no_comp = Problem::new(users.clone(), Vec::new(), candidates.clone(), 2, tau, pf);
    let naive = solve(&no_comp, Method::Baseline);

    // --- With competition: the true MC²LS objective. ---
    let with_comp = Problem::new(users.clone(), facilities, candidates.clone(), 2, tau, pf);
    let aware = solve(&with_comp, Method::Iqt(IqtConfig::default()));

    println!("candidate influence map:");
    for (i, c) in candidates.iter().enumerate() {
        let influenced: Vec<String> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| influences(&pf, c, u.positions(), tau))
            .map(|(j, _)| format!("o{}", j + 1))
            .collect();
        println!(
            "  c{} at ({:>4.1}, {:>4.1}) -> {{{}}}",
            i + 1,
            c.x,
            c.y,
            influenced.join(", ")
        );
    }

    println!(
        "\ncompetition-blind pick : {:?}  (raw coverage value {:.2})",
        names(&naive.solution.selected),
        naive.solution.cinf
    );
    println!(
        "competition-aware pick : {:?}  (competitive influence {:.2})",
        names(&aware.solution.selected),
        aware.solution.cinf
    );

    // Evaluate the naive pick under the true competitive objective.
    let (sets, _, _) =
        mc2ls::core::algorithms::influence_sets(&with_comp, Method::Iqt(IqtConfig::default()));
    let naive_under_competition = cinf_of_set(&sets, &naive.solution.selected);
    println!(
        "\nunder competition the blind pick captures {naive_under_competition:.2}, \
         the aware pick {:.2} — {:+.0}% market share",
        aware.solution.cinf,
        (aware.solution.cinf / naive_under_competition - 1.0) * 100.0
    );
}

fn user_at(positions: &[(f64, f64)]) -> MovingUser {
    MovingUser::new(positions.iter().map(|&(x, y)| Point::new(x, y)).collect())
}

fn names(ids: &[u32]) -> Vec<String> {
    ids.iter().map(|c| format!("c{}", c + 1)).collect()
}
