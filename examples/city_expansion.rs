//! Chain-expansion planning at city scale: generate the calibrated
//! New-York-like dataset, sweep the store budget `k`, and report the market
//! share captured at each budget — the diminishing-returns curve that the
//! submodularity of `cinf` (paper Theorem 2) guarantees.
//!
//! ```sh
//! cargo run --release --example city_expansion
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;

fn main() {
    let dataset = presets::new_york_scaled(0.5).generate();
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users, {} positions, skew share {:.2}",
        dataset.name, stats.n_users, stats.n_positions, stats.hotspot_share
    );

    let (candidates, facilities) = dataset.sample_sites_disjoint(100, 200, 4242);
    let users = dataset.users;

    // Total addressable demand: each user counts 1/(|F_o|+1) if we reach
    // them; the ceiling is reached when every user is influenced by at
    // least one selected candidate.
    println!(
        "\n{:>3}  {:>10}  {:>12}  {:>9}",
        "k", "cinf(G)", "Δ last pick", "time"
    );
    let mut problem = Problem::new(
        users,
        facilities,
        candidates,
        1,
        0.7,
        Sigmoid::paper_default(),
    );
    for k in [1, 2, 5, 10, 15, 20, 25] {
        problem.k = k;
        let report = solve_with(
            &problem,
            Method::Iqt(IqtConfig::default()),
            Selector::LazyGreedy,
        );
        println!(
            "{k:>3}  {:>10.3}  {:>12.4}  {:>9.1?}",
            report.solution.cinf,
            report
                .solution
                .marginal_gains
                .last()
                .copied()
                .unwrap_or(0.0),
            report.times.total(),
        );
    }

    println!(
        "\nThe marginal gain of each additional store shrinks monotonically — \
         the (1 - 1/e) guarantee of the greedy pick rests on exactly this."
    );
}
