//! Geo-social site selection (the paper's future-work scenario): physical
//! influence seeds word-of-mouth propagation over a friendship graph, and
//! the best sites change once social reach counts.
//!
//! ```sh
//! cargo run --release --example geo_social
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;
use mc2ls::social::{solve_social, PropagationModel, SocialGraph, SocialProblem};

fn main() {
    let dataset = presets::new_york_scaled(0.2).generate();
    let n_users = dataset.users.len();
    println!("dataset {}: {} users", dataset.name, n_users);

    let (candidates, facilities) = dataset.sample_sites_disjoint(40, 80, 7);
    let base = Problem::new(
        dataset.users,
        facilities,
        candidates,
        5,
        0.7,
        Sigmoid::paper_default(),
    );

    // A small-world friendship graph over the same users.
    let graph = SocialGraph::small_world(n_users, 6, 0.1, (0.05, 0.4), 99);
    println!(
        "friendship graph: {} edges, mean degree {:.1}",
        graph.edge_count(),
        graph.mean_degree()
    );

    // Purely physical selection for comparison.
    let physical = solve(&base, Method::Iqt(IqtConfig::default()));

    // Geo-social selection under Independent Cascade.
    let social_problem = SocialProblem::new(
        base.clone(),
        graph,
        vec![],
        PropagationModel::IndependentCascade {
            samples: 16,
            seed: 2024,
        },
    );
    let social = solve_social(&social_problem);

    println!(
        "\nphysical-only pick : {:?}",
        physical.solution.selected_sorted()
    );
    println!("  captures cinf(G) = {:.2}", physical.solution.cinf);
    let mut s = social.selected.clone();
    s.sort_unstable();
    println!("geo-social pick    : {s:?}");
    println!(
        "  expected social influence = {:.2} (geo-only value of the same set: {:.2})",
        social.scinf, social.geo_cinf
    );
    println!(
        "\nWord-of-mouth multiplies the captured demand by ~{:.2}x for the \
         social-aware set.",
        social.scinf / social.geo_cinf.max(1e-9)
    );
}
