//! Quickstart: build a small synthetic city, pick the best `k` sites with
//! the IQuad-tree algorithm, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;

fn main() {
    // A 20×20 km synthetic town: 400 moving users, ~6k recorded positions.
    let dataset = DatasetConfig {
        name: "quickstart-town".into(),
        n_users: 400,
        target_positions: 6_000,
        region_km: 20.0,
        hotspots: 12,
        hotspot_skew: 0.6,
        local_spread_km: 0.8,
        travel_span: 0.3,
        hotspots_per_user: (1, 3),
        min_positions: 2,
        n_pois: 200,
        seed: 7,
    }
    .generate();

    let stats = dataset.stats();
    println!(
        "dataset: {} users, {} positions (avg {:.1} per user)",
        stats.n_users, stats.n_positions, stats.mean_positions
    );

    // 30 candidate sites for our chain, 40 existing competitor facilities.
    let (candidates, facilities) = dataset.sample_sites_disjoint(30, 40, 99);

    let problem = Problem::new(
        dataset.users,
        facilities,
        candidates,
        5,   // open five new stores
        0.6, // influence threshold τ
        Sigmoid::paper_default(),
    );

    let report = solve(&problem, Method::Iqt(IqtConfig::default()));

    println!("\nselected sites (pick order, with marginal market share):");
    for (c, gain) in report
        .solution
        .selected
        .iter()
        .zip(&report.solution.marginal_gains)
    {
        let p = problem.candidates[*c as usize];
        println!(
            "  candidate #{c:<3} at ({:>6.2}, {:>6.2}) km   +{gain:.3}",
            p.x, p.y
        );
    }
    println!(
        "\ncompetitive collective influence cinf(G) = {:.3}",
        report.solution.cinf
    );
    println!(
        "pruning: {:.1}% of user-facility pairs decided without exact checks \
         (IS {:.1}%, NIR {:.1}%, NIB {:.1}%)",
        report.stats.pruned_fraction() * 100.0,
        report.stats.is_fraction() * 100.0,
        report.stats.nir_fraction() * 100.0,
        report.stats.nib_fraction() * 100.0,
    );
    println!("total time: {:.1?}", report.times.total());
}
