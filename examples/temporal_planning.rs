//! Time-aware site selection: commuters are reachable near offices at
//! lunch and near home in the evening; the slot weights (when people
//! actually buy) decide which sites win.
//!
//! ```sh
//! cargo run --release --example temporal_planning
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;
use mc2ls::temporal::{solve_temporal, TemporalProblem, TimedUser};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let office = Point::new(0.0, 0.0);
    let suburbs = [Point::new(12.0, 3.0), Point::new(-4.0, 11.0)];

    // 400 commuters: noon positions around the office district, evening
    // positions around one of two suburbs.
    let users: Vec<TimedUser> = (0..400)
        .map(|i| {
            let home = suburbs[i % 2];
            let mut records = Vec::new();
            for _ in 0..3 {
                records.push((
                    Point::new(office.x + rng.gen::<f64>(), office.y + rng.gen::<f64>()),
                    0, // slot 0: working hours
                ));
                records.push((
                    Point::new(home.x + rng.gen::<f64>(), home.y + rng.gen::<f64>()),
                    1, // slot 1: evening
                ));
            }
            TimedUser::new(records)
        })
        .collect();

    let candidates = vec![
        Point::new(0.5, 0.5),   // office district
        Point::new(12.5, 3.5),  // suburb A
        Point::new(-3.5, 11.5), // suburb B
    ];
    let facilities = vec![Point::new(0.4, 0.6)]; // a competitor downtown

    let labels = ["office district", "suburb A", "suburb B"];
    for (weights, story) in [
        (vec![0.8, 0.2], "lunch-driven business (weekday cafés)"),
        (
            vec![0.2, 0.8],
            "evening-driven business (dinner restaurants)",
        ),
    ] {
        let problem = TemporalProblem {
            users: users.clone(),
            facilities: facilities.clone(),
            candidates: candidates.clone(),
            k: 2,
            tau: 0.6,
            pf: Sigmoid::paper_default(),
            n_slots: 2,
            slot_weights: weights.clone(),
        };
        let sol = solve_temporal(&problem);
        let picks: Vec<&str> = sol.selected.iter().map(|&c| labels[c as usize]).collect();
        println!(
            "{story}\n  slot weights {weights:?} -> open at {picks:?} \
             (weighted influence {:.1})\n",
            sol.cinf
        );
    }
}
