//! Runs every MC²LS algorithm on the same instance and cross-checks that
//! they all select the identical site set (the paper reports "all the
//! algorithms achieve identical k result candidates"), then prints their
//! timing and pruning profiles — a miniature of the paper's Fig. 10–14.
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

// Examples exist to print; sanctioned writers.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use mc2ls::prelude::*;

fn main() {
    let dataset = presets::california_scaled(0.08).generate();
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users, {} positions",
        dataset.name, stats.n_users, stats.n_positions
    );

    let (candidates, facilities) = dataset.sample_sites_disjoint(100, 200, 11);
    let problem = Problem::new(
        dataset.users,
        facilities,
        candidates,
        10,
        0.7,
        Sigmoid::paper_default(),
    );

    let methods = [
        Method::Baseline,
        Method::KCifp,
        Method::Iqt(IqtConfig::iqt_c(2.0)),
        Method::Iqt(IqtConfig::iqt(2.0)),
        Method::Iqt(IqtConfig::iqt_pino(2.0)),
    ];

    println!(
        "\n{:<10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "method", "time", "verified", "IS%", "NIR%", "NIB%", "cinf(G)"
    );
    let mut reference: Option<Solution> = None;
    for method in methods {
        let report = solve(&problem, method);
        println!(
            "{:<10} {:>9.1?} {:>9} {:>7.1}% {:>7.1}% {:>7.1}% {:>10.3}",
            method.name(),
            report.times.total(),
            report.stats.verified,
            report.stats.is_fraction() * 100.0,
            report.stats.nir_fraction() * 100.0,
            report.stats.nib_fraction() * 100.0,
            report.solution.cinf,
        );
        match &reference {
            None => reference = Some(report.solution),
            Some(r) => assert!(
                r.equivalent(&report.solution),
                "{} diverged from Baseline!",
                method.name()
            ),
        }
    }

    let reference = reference.unwrap();
    println!(
        "\nall algorithms picked the same {} sites: {:?}",
        reference.selected.len(),
        reference.selected_sorted()
    );
}
